type node = int

type element =
  | Resistor of { name : string; a : node; b : node; ohms : float }
  | Capacitor of { name : string; a : node; b : node; farads : float }
  | Vsource of { name : string; plus : node; minus : node; wave : Waveform.t }
  | Isource of { name : string; from_ : node; to_ : node; wave : Waveform.t }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      dev : Vstat_device.Device_model.t;
    }

type t = {
  mutable names : (string * node) list;  (* reverse lookup, small circuits *)
  mutable next_node : int;
  mutable elems : element list;          (* reverse insertion order *)
}

let create () = { names = [ ("0", 0); ("gnd", 0) ]; next_node = 1; elems = [] }

let ground _ = 0

let node t name =
  match List.assoc_opt name t.names with
  | Some n -> n
  | None ->
    let n = t.next_node in
    t.next_node <- n + 1;
    t.names <- (name, n) :: t.names;
    n

let node_name t n =
  match List.find_opt (fun (_, i) -> i = n) (List.rev t.names) with
  | Some (name, _) -> name
  | None -> Printf.sprintf "<node %d>" n

let node_index n = n

let add t e = t.elems <- e :: t.elems

let resistor t name ~a ~b ~ohms =
  if ohms <= 0.0 then
    invalid_arg "Netlist.resistor: ohms must be positive"
    [@vstat.allow "exn-discipline"];
  add t (Resistor { name; a; b; ohms })

let capacitor t name ~a ~b ~farads =
  if farads < 0.0 then
    invalid_arg "Netlist.capacitor: negative capacitance"
    [@vstat.allow "exn-discipline"];
  add t (Capacitor { name; a; b; farads })

let vsource t name ~plus ~minus ~wave = add t (Vsource { name; plus; minus; wave })
let isource t name ~from_ ~to_ ~wave = add t (Isource { name; from_; to_; wave })

let mosfet t name ~d ~g ~s ~b ~dev = add t (Mosfet { name; d; g; s; b; dev })

let elements t = List.rev t.elems

let node_count t = t.next_node - 1

let vsource_names t =
  List.filter_map
    (function Vsource { name; _ } -> Some name | _ -> None)
    (elements t)

let find_node t name = List.assoc_opt name t.names

let all_nodes t =
  List.filter (fun (_, n) -> n <> 0) (List.rev t.names)
