let crossing_time ~times ~values ~level ~rising =
  Vstat_util.Floatx.first_crossing ~xs:times ~ys:values ~level ~rising ()

let propagation_delay ~times ~input ~output ~v50 ~input_rising ~output_rising =
  match crossing_time ~times ~values:input ~level:v50 ~rising:input_rising with
  | None -> None
  | Some t_in -> (
    (* Scan from the segment *containing* the input edge, not the first
       sample at or after it: an output crossing inside the straddling
       segment (fast edges, coarse sampling) would otherwise be lost.
       Crossings interpolating to before [t_in] are skipped, not returned. *)
    let n = Array.length times in
    let start =
      let rec find i = if i >= n || times.(i) >= t_in then i else find (i + 1) in
      Int.max 0 (find 0 - 1)
    in
    match
      Vstat_util.Floatx.first_crossing ~start ~min_x:t_in ~xs:times ~ys:output
        ~level:v50 ~rising:output_rising ()
    with
    | None -> None
    | Some t_out -> Some (t_out -. t_in))

let settled_value ~values ~tail_fraction =
  let n = Array.length values in
  if n = 0 then
    invalid_arg "Measure.settled_value: empty waveform"
    [@vstat.allow "exn-discipline"];
  let k = Int.max 1 (Float.to_int (tail_fraction *. Float.of_int n)) in
  let tail = Array.sub values (n - k) k in
  Array.fold_left ( +. ) 0.0 tail /. Float.of_int k

let dc_sweep engine ~set ~values ~probe =
  let guess = ref None in
  Array.map
    (fun v ->
      set v;
      let op = Engine.dc ?guess:!guess engine in
      guess := Some (Array.copy op.Engine.x);
      probe op)
    values
