type pulse_shape = {
  low : float;
  high : float;
  delay : float;
  rise : float;
  fall : float;
  width : float;
  period : float;
}

type pwl_shape = {
  points : (float * float) array;
  xs : float array;
  ys : float array;
}

type t =
  | Dc of float
  | Var of float ref
  | Pulse of pulse_shape
  | Pwl of pwl_shape
  | Sine of sine_shape

and sine_shape = {
  offset : float;
  amplitude : float;
  freq_hz : float;
  phase : float;
}

let pwl points =
  if Array.length points = 0 then
    invalid_arg "Waveform.pwl: empty point list"
    [@vstat.allow "exn-discipline"];
  (* Split the (time, value) pairs once at construction: [pwl_value] runs
     inside every Newton iteration of every transient step, and mapping
     fst/snd there would allocate two arrays per evaluation. *)
  Pwl { points; xs = Array.map fst points; ys = Array.map snd points }

let pulse_value p time =
  let t = time -. p.delay in
  if t < 0.0 then p.low
  else begin
    let t = if p.period > 0.0 then Float.rem t p.period else t in
    if t < p.rise then p.low +. ((p.high -. p.low) *. t /. p.rise)
    else if t < p.rise +. p.width then p.high
    else if t < p.rise +. p.width +. p.fall then
      p.high -. ((p.high -. p.low) *. (t -. p.rise -. p.width) /. p.fall)
    else p.low
  end

let pwl_value { xs; ys; _ } time =
  let n = Array.length xs in
  if time <= xs.(0) then ys.(0)
  else if time >= xs.(n - 1) then ys.(n - 1)
  else Vstat_util.Floatx.interp_linear ~xs ~ys time

let value t time =
  match t with
  | Dc v -> v
  | Var r -> !r
  | Pulse p -> pulse_value p time
  | Pwl p -> pwl_value p time
  | Sine s ->
    s.offset +. (s.amplitude *. sin ((2.0 *. Float.pi *. s.freq_hz *. time) +. s.phase))

(* Cap on emitted pulse-train corners, so a degenerate tiny period cannot
   produce an unbounded breakpoint list. *)
let max_breakpoints = 4096

let breakpoints t ~tstop =
  match t with
  | Dc _ | Var _ | Sine _ -> []
  | Pwl { xs; _ } ->
    Array.fold_right
      (fun x acc -> if x > 0.0 && x < tstop then x :: acc else acc)
      xs []
  | Pulse p ->
    let corners =
      [ 0.0; p.rise; p.rise +. p.width; p.rise +. p.width +. p.fall ]
    in
    let rec periods acc count t0 =
      if p.delay +. t0 >= tstop || count >= max_breakpoints then acc
      else begin
        let acc =
          List.fold_left
            (fun acc c ->
              let x = p.delay +. t0 +. c in
              if x > 0.0 && x < tstop then x :: acc else acc)
            acc corners
        in
        if p.period > 0.0 then periods acc (count + 4) (t0 +. p.period)
        else acc
      end
    in
    List.rev (periods [] 0 0.0)

let step ?(delay = 0.0) ?(rise = 10e-12) ~low ~high () =
  pwl [| (delay, low); (delay +. rise, high) |]

let falling_step ?(delay = 0.0) ?(fall = 10e-12) ~high ~low () =
  pwl [| (delay, high); (delay +. fall, low) |]
