(** SPICE-deck front end for the circuit engine.

    Parses the practical subset of Berkeley-SPICE syntax needed to drive
    this simulator from standard netlists:

    {v
      * comment lines and trailing "$ comments"
      + continuation lines
      Rname n+ n- value            resistors
      Cname n+ n- value            capacitors
      Vname n+ n- DC v | PULSE(v1 v2 td tr tf pw per) | PWL(t1 v1 t2 v2 ...)
                        | SIN(off ampl freq)          voltage sources
      Iname n+ n- <same forms>                        current sources
      Mname d g s b model [W=... ] [L=...]            MOSFETs
      .model name vs|bsim4lite (type=n|p [param=value ...])
      .tran tstep tstop
      .dc  source start stop step
      .ac  dec points fstart fstop source
      .end
    v}

    Values accept engineering suffixes (f p n u m k meg g t) and units are
    SI.  MOSFET model cards start from the built-in synthetic-node defaults
    ({!Vstat_device.Cards}) and apply the listed parameter overrides;
    geometry W/L on the instance line takes precedence over the card.

    VS-card parameters: [vt0 delta0 lscale n0 nd vxo mu beta alphaq gamma
    phib cinv cov] (vxo in m/s, mu in m^2/Vs, cinv in F/m^2 — SI like the
    rest of the deck).  Bsim4lite-card parameters: [vth0 k1 phis dvt0 dvtl
    eta0 etal u0 ua ub vsat nss lambda cox cov]. *)

type analysis =
  | Tran of { tstep : float; tstop : float }
  | Dc_sweep of { source : string; start : float; stop : float; step : float }
  | Ac of { points_per_decade : int; f_start : float; f_stop : float;
            source : string }

type deck = {
  title : string;
  netlist : Netlist.t;
  analyses : analysis list;
}

exception Parse_error of { line : int; message : string }

val parse_string : string -> deck
(** Parse a whole deck from a string; the first non-comment line is
    always the title, as in SPICE.
    @raise Parse_error with a 1-based line number on malformed input. *)

val parse_file : string -> deck
(** [parse_file path] reads and parses a deck.
    @raise Sys_error on I/O failure, {!Parse_error} on syntax errors. *)

val parse_value : string -> float
(** Engineering-notation scalar with Berkeley-SPICE scale-factor
    semantics, exposed for tests.  The number is the longest numeric
    prefix; the trailing alphabetic part is matched case-insensitively
    against the scale factors [T G MEG K MIL M U N P F] (MEG and MIL
    before single-letter M, so ["3MEG"] is 3e6, not 3e-3) and any
    remaining unit letters are ignored: ["10pF"] is 10e-12, ["1kOhm"]
    is 1e3, ["10V"] is 10.
    @raise Parse_error (with [line = 0]) on malformed numbers. *)
