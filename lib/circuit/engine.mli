(** Modified-nodal-analysis solver: Newton–Raphson DC and transient.

    The solution vector stacks node voltages (nodes 1..N) followed by the
    branch currents of voltage sources (in netlist insertion order).
    Nonlinear devices are linearized each Newton iteration through their
    analytic derivative path ({!Vstat_device.Device_model.eval_derivs})
    when the model provides one — a single model call per device per
    iteration — falling back to one-sided finite differences (5 calls)
    otherwise.  Convergence aids are a gmin floor, gmin stepping and source
    stepping.

    Each compiled engine owns a reusable workspace (Jacobian values,
    residual, update vector, factor storage, charge-state scratch and a
    device derivative buffer), so the Newton inner loop performs no
    allocation; factorization and triangular solves run in place on the
    workspace.

    Two linear-solver backends share one stamping interface: a dense
    in-place LU ({!Vstat_linalg.Lu}) and a sparse KLU-style solver
    ({!Vstat_linalg.Sparse}) whose symbolic analysis is computed once per
    circuit topology and shared across engines (and Monte Carlo samples)
    through a process-wide cache.  At [compile] time every element's stamp
    coordinates are resolved to flat slot indices into the backend's value
    buffer, so the assembly loop is identical for both backends.  Both use
    the same scale-relative pivot test, and sparse pivot order is static
    (topology only), so results are independent of sample order and worker
    count. *)

type t
(** Compiled system (frozen netlist + index maps + workspaces).  An engine
    instance is not thread-safe: its workspace is reused across solves, so
    share nothing — compile one engine per domain. *)

type backend =
  | Auto    (** sparse for [unknowns >= 32], dense below (default) *)
  | Dense   (** force the dense LU path *)
  | Sparse  (** force the sparse path (any size) *)

val compile : ?backend:backend -> Netlist.t -> t

val resolved_backend : t -> backend
(** The backend actually chosen ([Dense] or [Sparse], never [Auto]). *)

val unknowns : t -> int
(** Size of the MNA solution vector. *)

(** {1 Solver options}

    Every tunable of the DC/transient solvers in one record, so a retry
    policy can escalate a whole sample at once.  Solver failures raise
    {!Diag.Solver_error} with a typed diagnostic — this module raises no
    string exceptions. *)

type solver_options = {
  max_iter_dc : int;        (** Newton cap per DC continuation stage (80) *)
  max_iter_tran : int;      (** Newton cap per transient step (40) *)
  damping_clamp : float;    (** node-voltage update clamp, V (0.5) *)
  gmin_floor : float;       (** diagonal conductance floor, S (1e-12) *)
  gmin_ladder : float list; (** gmin stepping stages, before the floor *)
  source_ladder : float list;  (** source stepping scale factors *)
  dt_min_factor : float;    (** minimum step as a fraction of [dt] (1/256) *)
  dt_scale : float;         (** scales the requested [dt] (1.0); retry
                                escalation halves it *)
  trap : bool;              (** trapezoidal integration (default BE) *)
  work_cap : int;
      (** watchdog: max Newton iterations + accepted steps per public solve
          — a deterministic bound, unlike wall-clock, so a pathological
          corner fails identically on every machine and worker count *)
}

val default_options : solver_options

val escalate : attempt:int -> solver_options -> solver_options
(** Options for retry attempt [attempt] (0 = first try, returned
    unchanged).  Attempt 1 is value-neutral — it only relaxes limits that
    cannot alter the result of a solve that succeeds (iteration caps, work
    cap, denser gmin ladder), so a retried sample whose re-run encounters
    no fault reproduces the first-attempt value bit-for-bit.  Attempt >= 2
    additionally halves the step ([dt_scale]), lowers the [dt_min] floor
    and tightens the damping clamp. *)

val with_options : solver_options -> (unit -> 'a) -> 'a
(** Run a thunk with the given options ambient on the current domain:
    [dc]/[transient] calls that don't pass [?options] pick them up.  This
    is how the runtime's retry ladder escalates measurement code that calls
    the solver many layers down.  Restores the previous ambient options on
    exit (including by exception); ambient state is per-domain
    ([Domain.DLS]), so parallel workers don't interfere. *)

val current_options : unit -> solver_options
(** The ambient options of the current domain ({!default_options} unless
    inside {!with_options}). *)

type op = {
  x : float array;       (** converged solution vector *)
  time : float;          (** time at which sources were evaluated *)
}

val dc : ?options:solver_options -> ?guess:float array -> ?time:float -> t -> op
(** Operating point.  Tries direct Newton from [guess] (default: all zeros),
    then gmin stepping, then source stepping, under [options] (default:
    {!current_options}).
    @raise Diag.Solver_error with kind [Dc_no_convergence],
    [Singular_jacobian], [Nonfinite_update] or [Work_cap_exceeded]. *)

val voltage : t -> op -> Netlist.node -> float
val source_current : t -> op -> string -> float
(** Branch current of a named voltage source (positive current flows into
    the [plus] terminal through the source toward [minus]).
    @raise Invalid_argument naming the unknown source and the known names. *)

type trace = {
  times : float array;
  states : float array array;  (** states.(k) is the solution at times.(k) *)
}

val transient :
  ?options:solver_options ->
  ?trap:bool ->
  ?dt_min_factor:float ->
  t -> tstop:float -> dt:float -> trace
(** Integrate from a t=0 operating point to [tstop] with maximum step [dt]
    (backward Euler by default, trapezoidal when [trap]).  The step is
    halved on Newton failure (down to [dt * dt_min_factor], default 1/256)
    and grown back on easy convergence.  Steps are aligned to the waveform
    corners of every independent source (pulse edges, PWL vertices), so
    sharp input transitions are landed on exactly rather than straddled.
    [?trap]/[?dt_min_factor] override the corresponding [options] fields
    (default: {!current_options}); the t=0 operating point shares the
    solve's work budget.
    @raise Diag.Solver_error with kind [Tran_step_floor] (or
    [Nonfinite_update]/[Singular_jacobian] when that is what kept killing
    steps), [Work_cap_exceeded], or a DC kind from the t=0 solve. *)

type raw_trace = {
  raw_unknowns : int;   (** row width of [raw_states] *)
  raw_len : int;        (** valid points, including the t=0 row *)
  raw_times : float array;
      (** length >= [raw_len]; only the [raw_len] prefix is meaningful *)
  raw_states : float array;
      (** row-major: point k occupies
          [raw_states.(k * raw_unknowns .. (k+1) * raw_unknowns - 1)] *)
}

val transient_raw :
  ?options:solver_options ->
  ?trap:bool ->
  ?dt_min_factor:float ->
  t -> tstop:float -> dt:float -> raw_trace
(** Exactly {!transient}, but returning the engine's flat trace buffers
    instead of materialized per-step rows.  The integration loop itself
    performs no per-step allocation (the allocation gate in
    test/test_lint.ml pins it at zero minor words for a source-free
    circuit); slicing the trace into rows is the one O(steps) allocation
    of {!transient}, and this entry point is for callers — measurement
    kernels, the allocation gate — that can consume the flat buffers
    directly.  The returned arrays are freshly built each call (not
    engine workspace), but may be longer than [raw_len]. *)

val node_wave : t -> trace -> Netlist.node -> float array
val source_current_wave : t -> trace -> string -> float array

val residual_norm : t -> op -> float
(** Largest |KCL/constraint residual| of a DC solution — a direct measure of
    solve quality (well-converged operating points sit near 1e-12). *)

val branch_row : t -> string -> int
(** Index of a voltage source's branch-constraint row/column in the MNA
    system (used by {!Ac} to place the excitation).
    @raise Invalid_argument naming the unknown source and the known names. *)

val linearize : t -> op -> Vstat_linalg.Matrix.t * Vstat_linalg.Matrix.t
(** [linearize t op] is the small-signal (G, C) pair at the operating
    point: G is the conductance Jacobian, C the charge Jacobian, both over
    the full MNA unknown vector.  The AC system at angular frequency omega
    is (G + j omega C); see {!Ac}. *)

(** {1 Work counters}

    Per-phase workload accounting, kept both per engine instance and as
    process-wide totals (aggregated across domains, so a parallel Monte
    Carlo run can report the work of all its workers). *)

type counters = {
  newton_iterations : int;
      (** Newton iterations (linear solves attempted). *)
  model_evaluations : int;
      (** Compact-model linearizations: 1 per device per iteration on the
          analytic path, 5 on the finite-difference path. *)
  analytic_evaluations : int;  (** ... of which used analytic derivatives. *)
  fd_evaluations : int;        (** ... of which were FD perturbation calls. *)
  assemblies : int;            (** Full system assemblies (stamp passes). *)
  lu_factorizations : int;     (** In-place LU factorizations. *)
  accepted_steps : int;        (** Transient steps accepted. *)
  rejected_steps : int;        (** Transient steps rejected (halved). *)
  breakpoint_hits : int;       (** Steps truncated to a waveform corner. *)
}

val counters : t -> counters
(** This instance's counters since [compile] (or {!reset_counters}). *)

val reset_counters : t -> unit
(** Zero this instance's counters (pending deltas are flushed to the
    process-wide totals first). *)

val global_counters : unit -> counters
(** Process-wide totals across every engine on every domain.  Engines flush
    their local counts at the end of each [dc]/[transient]/[linearize]
    call, so totals are exact once the solves of interest have returned. *)

val reset_global_counters : unit -> unit

val counters_diff : counters -> counters -> counters
(** Field-wise [a - b]; use with {!global_counters} snapshots to attribute
    work to a region of interest. *)

val stats_newton_iterations : t -> int
(** Cumulative Newton iterations since [compile] — the workload counter the
    runtime comparison (paper Table IV) normalizes against.  Equivalent to
    [(counters t).newton_iterations]. *)

val stats_model_evaluations : t -> int
(** Cumulative compact-model linearizations since [compile].  With the
    analytic derivative path this counts one per device linearization (the
    FD fallback counts each of its 5 perturbation calls). *)
