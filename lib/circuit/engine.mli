(** Modified-nodal-analysis solver: Newton–Raphson DC and transient.

    The solution vector stacks node voltages (nodes 1..N) followed by the
    branch currents of voltage sources (in netlist insertion order).
    Nonlinear devices are linearized each Newton iteration through their
    analytic derivative path ({!Vstat_device.Device_model.eval_derivs})
    when the model provides one — a single model call per device per
    iteration — falling back to one-sided finite differences (5 calls)
    otherwise.  Convergence aids are a gmin floor, gmin stepping and source
    stepping.

    Each compiled engine owns a reusable workspace (Jacobian, residual,
    update vector, LU pivot storage, charge-state scratch and a device
    derivative buffer), so the Newton inner loop performs no allocation;
    the LU factorization and triangular solves run in place on the
    workspace via {!Vstat_linalg.Lu.factor_in_place}. *)

type t
(** Compiled system (frozen netlist + index maps + workspaces).  An engine
    instance is not thread-safe: its workspace is reused across solves, so
    share nothing — compile one engine per domain. *)

exception No_convergence of string

val compile : Netlist.t -> t

val unknowns : t -> int
(** Size of the MNA solution vector. *)

type op = {
  x : float array;       (** converged solution vector *)
  time : float;          (** time at which sources were evaluated *)
}

val dc : ?guess:float array -> ?time:float -> t -> op
(** Operating point.  Tries direct Newton from [guess] (default: all zeros),
    then gmin stepping, then source stepping.
    @raise No_convergence if every strategy fails. *)

val voltage : t -> op -> Netlist.node -> float
val source_current : t -> op -> string -> float
(** Branch current of a named voltage source (positive current flows into
    the [plus] terminal through the source toward [minus]).
    @raise Not_found for unknown names. *)

type trace = {
  times : float array;
  states : float array array;  (** states.(k) is the solution at times.(k) *)
}

val transient :
  ?trap:bool ->
  ?dt_min_factor:float ->
  t -> tstop:float -> dt:float -> trace
(** Integrate from a t=0 operating point to [tstop] with maximum step [dt]
    (backward Euler by default, trapezoidal when [trap]).  The step is
    halved on Newton failure (down to [dt * dt_min_factor], default 1/256)
    and grown back on easy convergence.  Steps are aligned to the waveform
    corners of every independent source (pulse edges, PWL vertices), so
    sharp input transitions are landed on exactly rather than straddled.
    @raise No_convergence if a step fails at the minimum size. *)

val node_wave : t -> trace -> Netlist.node -> float array
val source_current_wave : t -> trace -> string -> float array

val residual_norm : t -> op -> float
(** Largest |KCL/constraint residual| of a DC solution — a direct measure of
    solve quality (well-converged operating points sit near 1e-12). *)

val branch_row : t -> string -> int
(** Index of a voltage source's branch-constraint row/column in the MNA
    system (used by {!Ac} to place the excitation).
    @raise Not_found for unknown names. *)

val linearize : t -> op -> Vstat_linalg.Matrix.t * Vstat_linalg.Matrix.t
(** [linearize t op] is the small-signal (G, C) pair at the operating
    point: G is the conductance Jacobian, C the charge Jacobian, both over
    the full MNA unknown vector.  The AC system at angular frequency omega
    is (G + j omega C); see {!Ac}. *)

(** {1 Work counters}

    Per-phase workload accounting, kept both per engine instance and as
    process-wide totals (aggregated across domains, so a parallel Monte
    Carlo run can report the work of all its workers). *)

type counters = {
  newton_iterations : int;
      (** Newton iterations (linear solves attempted). *)
  model_evaluations : int;
      (** Compact-model linearizations: 1 per device per iteration on the
          analytic path, 5 on the finite-difference path. *)
  analytic_evaluations : int;  (** ... of which used analytic derivatives. *)
  fd_evaluations : int;        (** ... of which were FD perturbation calls. *)
  assemblies : int;            (** Full system assemblies (stamp passes). *)
  lu_factorizations : int;     (** In-place LU factorizations. *)
  accepted_steps : int;        (** Transient steps accepted. *)
  rejected_steps : int;        (** Transient steps rejected (halved). *)
  breakpoint_hits : int;       (** Steps truncated to a waveform corner. *)
}

val counters : t -> counters
(** This instance's counters since [compile] (or {!reset_counters}). *)

val reset_counters : t -> unit
(** Zero this instance's counters (pending deltas are flushed to the
    process-wide totals first). *)

val global_counters : unit -> counters
(** Process-wide totals across every engine on every domain.  Engines flush
    their local counts at the end of each [dc]/[transient]/[linearize]
    call, so totals are exact once the solves of interest have returned. *)

val reset_global_counters : unit -> unit

val counters_diff : counters -> counters -> counters
(** Field-wise [a - b]; use with {!global_counters} snapshots to attribute
    work to a region of interest. *)

val stats_newton_iterations : t -> int
(** Cumulative Newton iterations since [compile] — the workload counter the
    runtime comparison (paper Table IV) normalizes against.  Equivalent to
    [(counters t).newton_iterations]. *)

val stats_model_evaluations : t -> int
(** Cumulative compact-model linearizations since [compile].  With the
    analytic derivative path this counts one per device linearization (the
    FD fallback counts each of its 5 perturbation calls). *)
