type analysis =
  | Tran of { tstep : float; tstop : float }
  | Dc_sweep of { source : string; start : float; stop : float; step : float }
  | Ac of {
      points_per_decade : int;
      f_start : float;
      f_stop : float;
      source : string;
    }

type deck = { title : string; netlist : Netlist.t; analyses : analysis list }

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* --- scalar values with engineering suffixes --- *)

(* Berkeley-SPICE scale-factor semantics: the scalar is the longest numeric
   prefix; the trailing alphabetic part is examined case-insensitively for
   a scale factor, with the multi-letter factors MEG and MIL matched before
   single letters (so "3MEG" and "10MEGohm" cannot be shadowed into milli
   by the trailing/leading [m]), and any remaining unit letters ("pF",
   "kOhm", "V") are ignored.  An alphabetic tail with no recognized factor
   is a bare unit and scales by 1, as in SPICE. *)
let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  let n = String.length s in
  if n = 0 then raise (Parse_error { line = 0; message = "empty value" });
  let malformed () =
    raise
      (Parse_error
         { line = 0; message = Printf.sprintf "malformed value %S" s })
  in
  (* Longest numeric prefix (cold path: decks are parsed once). *)
  let num_len = ref 0 in
  for k = 1 to n do
    if Option.is_some (float_of_string_opt (String.sub s 0 k)) then
      num_len := k
  done;
  if !num_len = 0 then malformed ();
  let v = float_of_string (String.sub s 0 !num_len) in
  let rest = String.sub s !num_len (n - !num_len) in
  if not (String.for_all (fun c -> c >= 'a' && c <= 'z') rest) then
    malformed ();
  let starts p =
    String.length rest >= String.length p
    && String.sub rest 0 (String.length p) = p
  in
  let scale =
    if rest = "" then 1.0
    else if starts "meg" then 1e6
    else if starts "mil" then 25.4e-6
    else
      match rest.[0] with
      | 't' -> 1e12
      | 'g' -> 1e9
      | 'k' -> 1e3
      | 'm' -> 1e-3
      | 'u' -> 1e-6
      | 'n' -> 1e-9
      | 'p' -> 1e-12
      | 'f' -> 1e-15
      | _ -> 1.0 (* bare unit letters, e.g. "10v" *)
  in
  v *. scale

(* Like [parse_value] but failures carry the offending deck line number,
   so every malformed scalar in a deck reports uniformly. *)
let value ~line s =
  match parse_value s with
  | v -> v
  | exception Parse_error { message; _ } -> fail line "%s" message

(* --- logical lines: strip comments, join continuations --- *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let cleaned =
    List.mapi
      (fun i line ->
        let line =
          match String.index_opt line '$' with
          | Some k -> String.sub line 0 k
          | None -> line
        in
        (i + 1, String.trim line))
      raw
  in
  (* Join continuations onto the previous logical line. *)
  let rec join acc = function
    | [] -> List.rev acc
    | (num, line) :: rest ->
      if line = "" || line.[0] = '*' then join acc rest
      else if line.[0] = '+' then begin
        match acc with
        | (first_num, prev) :: acc_rest ->
          let cont = String.sub line 1 (String.length line - 1) in
          join ((first_num, prev ^ " " ^ cont) :: acc_rest) rest
        | [] -> fail num "continuation line with no preceding element"
      end
      else join ((num, line) :: acc) rest
  in
  join [] cleaned

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

(* Re-join tokens so that parenthesised groups like PULSE(a b c) become a
   single token even when blanks appear inside the parentheses. *)
let rejoin_parens toks =
  let rec go depth current acc = function
    | [] -> List.rev (if current = "" then acc else current :: acc)
    | t :: rest ->
      let opens = String.fold_left (fun n c -> if c = '(' then n + 1 else n) 0 t in
      let closes = String.fold_left (fun n c -> if c = ')' then n + 1 else n) 0 t in
      let depth' = depth + opens - closes in
      if depth = 0 && depth' = 0 then go 0 "" (t :: acc) rest
      else begin
        let current = if current = "" then t else current ^ " " ^ t in
        if depth' = 0 then go 0 "" (current :: acc) rest
        else go depth' current acc rest
      end
  in
  go 0 "" [] toks

(* --- waveform forms on source lines --- *)

let parse_paren_args line name body =
  (* body looks like "PULSE(1 2 3)" (case-insensitive); return the args. *)
  let upper = String.uppercase_ascii body in
  let prefix = String.uppercase_ascii name ^ "(" in
  if
    String.length upper >= String.length prefix
    && String.sub upper 0 (String.length prefix) = prefix
    && upper.[String.length upper - 1] = ')'
  then begin
    let inside =
      String.sub body (String.length prefix)
        (String.length body - String.length prefix - 1)
    in
    Some
      (List.map
         (fun t -> value ~line t)
         (tokens (String.map (fun c -> if c = ',' then ' ' else c) inside)))
  end
  else None

let parse_source_wave line rest =
  match rest with
  | [] -> fail line "source needs a value"
  | first :: _ -> (
    let joined = String.concat " " rest in
    match parse_paren_args line "PULSE" joined with
    | Some [ v1; v2; td; tr; tf; pw; per ] ->
      Waveform.Pulse
        { low = v1; high = v2; delay = td; rise = tr; fall = tf; width = pw;
          period = per }
    | Some [ v1; v2; td; tr; tf; pw ] ->
      Waveform.Pulse
        { low = v1; high = v2; delay = td; rise = tr; fall = tf; width = pw;
          period = 0.0 }
    | Some _ -> fail line "PULSE takes 6 or 7 arguments"
    | None -> (
      match parse_paren_args line "PWL" joined with
      | Some args ->
        if List.length args < 2 || List.length args mod 2 <> 0 then
          fail line "PWL needs an even number of arguments";
        let rec pairs = function
          | [] -> []
          | t :: v :: rest -> (t, v) :: pairs rest
          | _ -> assert false
        in
        Waveform.pwl (Array.of_list (pairs args))
      | None -> (
        match parse_paren_args line "SIN" joined with
        | Some [ off; ampl; freq ] ->
          Waveform.Sine { offset = off; amplitude = ampl; freq_hz = freq; phase = 0.0 }
        | Some [ off; ampl; freq; phase ] ->
          Waveform.Sine { offset = off; amplitude = ampl; freq_hz = freq; phase }
        | Some _ -> fail line "SIN takes 3 or 4 arguments"
        | None -> (
          (* DC value, optionally prefixed by the keyword DC. *)
          let value_token =
            if String.uppercase_ascii first = "DC" then
              match rest with
              | _ :: v :: _ -> v
              | _ -> fail line "DC needs a value"
            else first
          in
          Waveform.Dc (value ~line value_token)))))

(* --- .model cards --- *)

type model_card =
  | Vs_card of Vstat_device.Device_model.polarity * Vstat_device.Vs_model.params
  | Bsim_card of Vstat_device.Device_model.polarity * Vstat_device.Bsim4lite.params

let parse_assignments line toks =
  List.map
    (fun t ->
      match String.index_opt t '=' with
      | Some k ->
        let key = String.lowercase_ascii (String.sub t 0 k) in
        let v = String.sub t (k + 1) (String.length t - k - 1) in
        (key, v)
      | None -> fail line "expected key=value, got %S" t)
    toks

let polarity_of line v =
  match String.lowercase_ascii v with
  | "n" | "nmos" -> Vstat_device.Device_model.Nmos
  | "p" | "pmos" -> Vstat_device.Device_model.Pmos
  | other -> fail line "unknown device type %S" other

let parse_model line toks =
  match toks with
  | name :: family :: rest ->
    let body =
      String.concat " " rest
      |> String.map (fun c -> if c = '(' || c = ')' then ' ' else c)
    in
    let assignments = parse_assignments line (tokens body) in
    let lookup key = List.assoc_opt key assignments in
    let polarity =
      match lookup "type" with
      | Some v -> polarity_of line v
      | None -> fail line ".model needs type=n|p"
    in
    let num key default =
      match lookup key with
      | None -> default
      | Some v -> value ~line v
    in
    let card =
      match String.lowercase_ascii family with
      | "vs" ->
        let base =
          match polarity with
          | Vstat_device.Device_model.Nmos ->
            Vstat_device.Cards.vs_seed_nmos ~w_nm:600.0 ~l_nm:40.0
          | Vstat_device.Device_model.Pmos ->
            Vstat_device.Cards.vs_seed_pmos ~w_nm:600.0 ~l_nm:40.0
        in
        Vs_card
          ( polarity,
            {
              base with
              Vstat_device.Vs_model.vt0 = num "vt0" base.vt0;
              dibl =
                {
                  base.dibl with
                  delta0 = num "delta0" base.dibl.delta0;
                  l_scale = num "lscale" base.dibl.l_scale;
                };
              n0 = num "n0" base.n0;
              nd = num "nd" base.nd;
              vxo = num "vxo" base.vxo;
              mu = num "mu" base.mu;
              beta = num "beta" base.beta;
              alpha_q = num "alphaq" base.alpha_q;
              gamma_body = num "gamma" base.gamma_body;
              phib = num "phib" base.phib;
              cinv = num "cinv" base.cinv;
              cov = num "cov" base.cov;
            } )
      | "bsim4lite" | "bsim" ->
        let base =
          match polarity with
          | Vstat_device.Device_model.Nmos ->
            Vstat_device.Cards.bsim_nmos ~w_nm:600.0 ~l_nm:40.0
          | Vstat_device.Device_model.Pmos ->
            Vstat_device.Cards.bsim_pmos ~w_nm:600.0 ~l_nm:40.0
        in
        Bsim_card
          ( polarity,
            {
              base with
              Vstat_device.Bsim4lite.vth0 = num "vth0" base.vth0;
              k1 = num "k1" base.k1;
              phis = num "phis" base.phis;
              dvt0 = num "dvt0" base.dvt0;
              dvt_l = num "dvtl" base.dvt_l;
              eta0 = num "eta0" base.eta0;
              eta_l = num "etal" base.eta_l;
              u0 = num "u0" base.u0;
              ua = num "ua" base.ua;
              ub = num "ub" base.ub;
              vsat = num "vsat" base.vsat;
              n_ss = num "nss" base.n_ss;
              lambda = num "lambda" base.lambda;
              cox = num "cox" base.cox;
              cov = num "cov" base.cov;
            } )
      | other -> fail line "unknown model family %S (vs | bsim4lite)" other
    in
    (String.lowercase_ascii name, card)
  | _ -> fail line ".model needs a name and a family"

let device_of_card name card ~w ~l =
  match card with
  | Vs_card (polarity, p) ->
    Vstat_device.Vs_model.device ~name ~polarity
      { p with Vstat_device.Vs_model.w; l }
  | Bsim_card (polarity, p) ->
    Vstat_device.Bsim4lite.device ~name ~polarity
      { p with Vstat_device.Bsim4lite.w; l }

(* --- the deck --- *)

let parse_string text =
  let lines = logical_lines text in
  (* SPICE convention: the first (non-comment) line is always the title. *)
  let title, body =
    match lines with [] -> ("", []) | (_, first) :: rest -> (first, rest)
  in
  let netlist = Netlist.create () in
  let node name =
    if name = "0" || String.lowercase_ascii name = "gnd" then
      Netlist.ground netlist
    else Netlist.node netlist (String.lowercase_ascii name)
  in
  let models = Hashtbl.create 8 in
  let analyses = ref [] in
  let handle (line, text) =
    let toks = rejoin_parens (tokens text) in
    match toks with
    | [] -> ()
    | head :: rest -> (
      let first_char = Char.lowercase_ascii head.[0] in
      match first_char with
      | '.' -> (
        match (String.lowercase_ascii head, rest) with
        | ".end", _ -> ()
        | ".model", toks -> (
          let name, card = parse_model line toks in
          Hashtbl.replace models name card)
        | ".tran", [ tstep; tstop ] ->
          analyses :=
            Tran { tstep = value ~line tstep; tstop = value ~line tstop }
            :: !analyses
        | ".dc", [ source; start; stop; step ] ->
          analyses :=
            Dc_sweep
              {
                source = String.lowercase_ascii source;
                start = value ~line start;
                stop = value ~line stop;
                step = value ~line step;
              }
            :: !analyses
        | ".ac", [ kind; points; f_start; f_stop; source ] ->
          if String.lowercase_ascii kind <> "dec" then
            fail line ".ac supports only DEC sweeps";
          analyses :=
            Ac
              {
                points_per_decade = int_of_float (value ~line points);
                f_start = value ~line f_start;
                f_stop = value ~line f_stop;
                source = String.lowercase_ascii source;
              }
            :: !analyses
        | directive, _ -> fail line "unsupported directive %s" directive)
      | 'r' -> (
        match rest with
        | [ a; b; v ] -> (
          let ohms = value ~line v in
          try Netlist.resistor netlist head ~a:(node a) ~b:(node b) ~ohms
          with Failure m | Invalid_argument m -> fail line "%s" m)
        | _ -> fail line "R element: Rname n+ n- value")
      | 'c' -> (
        match rest with
        | [ a; b; v ] -> (
          let farads = value ~line v in
          try Netlist.capacitor netlist head ~a:(node a) ~b:(node b) ~farads
          with Failure m | Invalid_argument m -> fail line "%s" m)
        | _ -> fail line "C element: Cname n+ n- value")
      | 'v' -> (
        match rest with
        | plus :: minus :: wave_toks ->
          let wave = parse_source_wave line wave_toks in
          Netlist.vsource netlist
            (String.lowercase_ascii head)
            ~plus:(node plus) ~minus:(node minus) ~wave
        | _ -> fail line "V element: Vname n+ n- value|PULSE(...)|PWL(...)")
      | 'i' -> (
        match rest with
        | from_ :: to_ :: wave_toks ->
          let wave = parse_source_wave line wave_toks in
          Netlist.isource netlist
            (String.lowercase_ascii head)
            ~from_:(node from_) ~to_:(node to_) ~wave
        | _ -> fail line "I element: Iname n+ n- value")
      | 'm' -> (
        match rest with
        | d :: g :: s :: b :: model :: params ->
          let card =
            match Hashtbl.find_opt models (String.lowercase_ascii model) with
            | Some c -> c
            | None -> fail line "unknown model %S" model
          in
          let assignments = parse_assignments line params in
          let geom key default =
            match List.assoc_opt key assignments with
            | None -> default
            | Some v -> value ~line v
          in
          let w = geom "w" 600e-9 and l = geom "l" 40e-9 in
          let dev = device_of_card head card ~w ~l in
          Netlist.mosfet netlist head ~d:(node d) ~g:(node g) ~s:(node s)
            ~b:(node b) ~dev
        | _ -> fail line "M element: Mname d g s b model [W=..] [L=..]")
      | other -> fail line "unsupported element type '%c'" other)
  in
  List.iter handle body;
  { title; netlist; analyses = List.rev !analyses }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (In_channel.input_all ic))
