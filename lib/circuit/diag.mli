(** Typed solver diagnostics.

    Every failure the circuit layer can produce — solver non-convergence,
    numerical breakdown, measurement failures, watchdog trips, injected
    chaos faults — is carried by the single exception {!Solver_error}
    holding a structured {!t}: the failure {!kind} plus the context needed
    to debug it (analysis, simulated time, Newton iteration, continuation
    stage, last update norm, per-phase work-counter snapshot).

    At library initialization this module registers a
    {!Vstat_runtime.Runtime.register_classifier} mapping {!Solver_error}
    to its {!kind_name}, {!Vstat_device.Fault_inject.Injected} to
    ["injected_fault"], and {!Vstat_linalg.Linalg_error.Numeric_error} to
    ["numeric_error"], so Monte Carlo failure budgets and censuses report
    {e why} samples die, by category, instead of a bag of exception
    strings.  A [Printexc] printer is registered too, so uncaught
    diagnostics render in full. *)

type kind =
  | Dc_no_convergence   (** every DC continuation strategy failed *)
  | Tran_step_floor     (** transient step rejected below [dt_min] *)
  | Singular_jacobian   (** LU pivot breakdown on every attempted solve *)
  | Nonfinite_update    (** NaN/Inf in the Newton update or residual *)
  | Measure_no_crossing (** waveform measurement found no threshold crossing *)
  | Work_cap_exceeded   (** deterministic per-solve work watchdog tripped *)
  | Injected_fault      (** chaos-harness fault ({!Vstat_device.Fault_inject}) *)

val kind_name : kind -> string
(** Census category string, e.g. ["dc_no_convergence"]. *)

type t = {
  kind : kind;
  analysis : string;         (** e.g. ["dc"], ["transient"], ["measure:inv"] *)
  time : float option;       (** simulated time, when meaningful *)
  newton_iter : int option;  (** Newton iteration count at failure *)
  stage : string option;     (** continuation stage, e.g. ["gmin=1e-06"] *)
  dmax : float option;       (** last Newton update norm *)
  counters : (string * int) list;
      (** per-phase work-counter snapshot of the failing engine *)
  message : string;
}

exception Solver_error of t

val make :
  ?time:float ->
  ?newton_iter:int ->
  ?stage:string ->
  ?dmax:float ->
  ?counters:(string * int) list ->
  analysis:string ->
  kind ->
  string ->
  t

val fail :
  ?time:float ->
  ?newton_iter:int ->
  ?stage:string ->
  ?dmax:float ->
  ?counters:(string * int) list ->
  analysis:string ->
  kind ->
  ('a, unit, string, 'b) format4 ->
  'a
(** Format-and-raise: [fail ~analysis kind fmt ...] raises {!Solver_error}. *)

val to_string : t -> string
