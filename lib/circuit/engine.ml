(* Solver failures raise [Diag.Solver_error] carrying a typed diagnostic;
   this module never raises a bare string exception. *)

type solver_options = {
  max_iter_dc : int;
  max_iter_tran : int;
  damping_clamp : float;
  gmin_floor : float;
  gmin_ladder : float list;
  source_ladder : float list;
  dt_min_factor : float;
  dt_scale : float;
  trap : bool;
  work_cap : int;
}

let default_options =
  {
    max_iter_dc = 80;
    max_iter_tran = 40;
    damping_clamp = 0.5;
    gmin_floor = 1e-12;
    gmin_ladder = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10 ];
    source_ladder = [ 0.05; 0.15; 0.3; 0.45; 0.6; 0.75; 0.9; 1.0 ];
    dt_min_factor = 1.0 /. 256.0;
    dt_scale = 1.0;
    trap = false;
    work_cap = 1_000_000;
  }

let dense_gmin_ladder =
  [ 1e-1; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8; 1e-9; 1e-10; 1e-11 ]

(* Escalation ladder for the runtime's retry policy.  Attempt 1 is
   value-neutral: it only relaxes limits that cannot change the result of a
   solve that succeeds (iteration caps, work cap, a denser gmin ladder that
   is consulted only after the direct solve has already failed), so a
   retried sample whose re-run hits no fault reproduces the clean value
   bit-for-bit.  From attempt 2 the step size and damping change too —
   those solves may differ at the convergence tolerance (~1e-11). *)
let escalate ~attempt o =
  if attempt <= 0 then o
  else begin
    let boost = Int.shift_left 1 (Int.min attempt 4) in
    let o' =
      {
        o with
        max_iter_dc = o.max_iter_dc * boost;
        max_iter_tran = o.max_iter_tran * boost;
        gmin_ladder = dense_gmin_ladder;
        work_cap =
          (if o.work_cap >= max_int / boost then max_int
           else o.work_cap * boost);
      }
    in
    if attempt = 1 then o'
    else
      {
        o' with
        dt_scale =
          o.dt_scale /. Float.of_int (Int.shift_left 1 (Int.min (attempt - 1) 6));
        dt_min_factor = o.dt_min_factor /. 16.0;
        damping_clamp = o.damping_clamp *. 0.5;
      }
  end

(* Ambient options, per domain: measurement code deep inside a cell calls
   [dc]/[transient] without threading options through every layer, yet a
   retry wrapper can still escalate the whole sample under
   [with_options]. *)
let ambient_key = Domain.DLS.new_key (fun () -> default_options)

let current_options () = Domain.DLS.get ambient_key

let with_options opts f =
  let old = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key opts;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key old) f

type mode = Dc | Tran of { h : float; trap : bool }

(* ------------------------------------------------------------------ *)
(* Per-phase work counters.                                            *)

type counters = {
  newton_iterations : int;
  model_evaluations : int;
  analytic_evaluations : int;
  fd_evaluations : int;
  assemblies : int;
  lu_factorizations : int;
  accepted_steps : int;
  rejected_steps : int;
  breakpoint_hits : int;
}

let n_counters = 9
let c_newton = 0
let c_model = 1
let c_analytic = 2
let c_fd = 3
let c_assembly = 4
let c_lu = 5
let c_accepted = 6
let c_rejected = 7
let c_breakpoint = 8

let counters_of_array a =
  {
    newton_iterations = a.(c_newton);
    model_evaluations = a.(c_model);
    analytic_evaluations = a.(c_analytic);
    fd_evaluations = a.(c_fd);
    assemblies = a.(c_assembly);
    lu_factorizations = a.(c_lu);
    accepted_steps = a.(c_accepted);
    rejected_steps = a.(c_rejected);
    breakpoint_hits = a.(c_breakpoint);
  }

let counters_diff a b =
  {
    newton_iterations = a.newton_iterations - b.newton_iterations;
    model_evaluations = a.model_evaluations - b.model_evaluations;
    analytic_evaluations = a.analytic_evaluations - b.analytic_evaluations;
    fd_evaluations = a.fd_evaluations - b.fd_evaluations;
    assemblies = a.assemblies - b.assemblies;
    lu_factorizations = a.lu_factorizations - b.lu_factorizations;
    accepted_steps = a.accepted_steps - b.accepted_steps;
    rejected_steps = a.rejected_steps - b.rejected_steps;
    breakpoint_hits = a.breakpoint_hits - b.breakpoint_hits;
  }

(* Process-wide totals, aggregated across every engine instance on every
   domain.  Engines accumulate locally and flush the delta at the end of
   each public solve so the hot loops never touch an atomic. *)
let totals = Array.init n_counters (fun _ -> Atomic.make 0)

let global_counters () =
  counters_of_array (Array.map Atomic.get totals)

let reset_global_counters () = Array.iter (fun a -> Atomic.set a 0) totals

(* Which linear-solver path a compiled engine uses.  [Auto] picks sparse
   once the system is big enough that the O(n^2)-per-factorization dense
   path loses; tiny systems stay dense both for speed and so existing
   small-circuit results are bit-identical to previous releases. *)
type backend = Auto | Dense | Sparse

let sparse_threshold = 32

type solver_state =
  | S_dense
  | S_sparse of Vstat_linalg.Sparse.numeric

type t = {
  elems : Netlist.element array;
  nn : int;                          (* node-voltage unknowns *)
  nv : int;                          (* vsource branch unknowns *)
  vsrc_index : (string * int) list;  (* source name -> branch slot *)
  charge_offset : int array;         (* per element; -1 = no charge state *)
  n_charges : int;
  cnt : int array;                   (* per-phase counters, local *)
  flushed : int array;               (* portion already pushed to [totals] *)
  (* Reusable per-instance workspace: one allocation at compile time, zero
     allocations per Newton iteration afterwards. *)
  solver : solver_state;
  jac : Vstat_linalg.Matrix.t;       (* dense factor workspace (1x1 dummy
                                        on the sparse path) *)
  pivots : int array;                (* dense pivot storage *)
  vals : float array;
      (* Jacobian stamp buffer: the dense matrix buffer or the sparse value
         array — assembly writes through [slots] either way. *)
  slots : int array array;
      (* Per-element flat stamp indices into [vals], resolved once here at
         compile time (-1 = ground, dropped).  Layouts: R/C 4 (aa ab ba bb);
         vsource 4 (p,br m,br br,p br,m); MOSFET 16 (terminal block rows x
         cols in g d s b order); isource 0. *)
  diag_slots : int array;            (* node diagonals, for the gmin floor *)
  res : float array;
  rhs : float array;                 (* negated residual, then the update *)
  xws : float array;                 (* Newton iterate *)
  mutable q_work : float array;      (* charges at the current candidate *)
  mutable i_work : float array;      (* charge currents at the candidate *)
  dbuf : Vstat_device.Device_model.derivs;
  (* Current source-evaluation time, in a 1-slot float array rather than a
     mutable float field or a parameter: float-array stores stay unboxed,
     whereas passing a freshly computed float to the (non-inlined) newton /
     assemble functions would box it once per transient step. *)
  now : float array;
  (* Work-cap watchdog: Newton iterations + accepted steps consumed by the
     current public solve, against the active options' cap. *)
  mutable work_used : int;
  mutable work_cap : int;
}

let compile ?(backend = Auto) netlist =
  let elems = Array.of_list (Netlist.elements netlist) in
  let nn = Netlist.node_count netlist in
  let charge_offset = Array.make (Array.length elems) (-1) in
  let n_charges = ref 0 in
  let nv = ref 0 in
  let vsrc_index = ref [] in
  Array.iteri
    (fun k e ->
      match e with
      | Netlist.Capacitor _ ->
        charge_offset.(k) <- !n_charges;
        n_charges := !n_charges + 1
      | Netlist.Mosfet _ ->
        charge_offset.(k) <- !n_charges;
        n_charges := !n_charges + 4
      | Netlist.Vsource { name; _ } ->
        vsrc_index := (name, !nv) :: !vsrc_index;
        incr nv
      | Netlist.Resistor _ | Netlist.Isource _ -> ())
    elems;
  let n = Int.max (nn + !nv) 1 in
  let nq = Int.max !n_charges 1 in
  (* Per-element Jacobian coordinate blocks in stamp order; -1 components
     mark the dropped ground row/column. *)
  let ni h = Netlist.node_index h - 1 in
  let coords = Array.make (Array.length elems) [||] in
  let branch = ref 0 in
  for k = 0 to Array.length elems - 1 do
    coords.(k) <-
      (match elems.(k) with
      | Netlist.Resistor { a; b; _ } | Netlist.Capacitor { a; b; _ } ->
        let ia = ni a and ib = ni b in
        [| (ia, ia); (ia, ib); (ib, ia); (ib, ib) |]
      | Netlist.Vsource { plus; minus; _ } ->
        let ip = ni plus and im = ni minus in
        let bc = nn + !branch in
        incr branch;
        [| (ip, bc); (im, bc); (bc, ip); (bc, im) |]
      | Netlist.Isource _ -> [||]
      | Netlist.Mosfet { d; g; s; b; _ } ->
        let trm = [| ni g; ni d; ni s; ni b |] in
        Array.init 16 (fun p -> (trm.(p / 4), trm.(p mod 4))))
  done;
  let use_sparse =
    match backend with
    | Dense -> false
    | Sparse -> true
    | Auto -> n >= sparse_threshold
  in
  let solver, jac, pivots, vals, slots, diag_slots =
    if use_sparse then begin
      (* The shared pattern: every stamped coordinate plus the gmin node
         diagonals.  [analyze_cached] memoizes per topology, so compiling
         one engine per MC sample performs the symbolic work once. *)
      let entries = ref [] in
      for i = 0 to nn - 1 do
        entries := (i, i) :: !entries
      done;
      Array.iter
        (Array.iter (fun (r, c) ->
             if r >= 0 && c >= 0 then entries := (r, c) :: !entries))
        coords;
      let sym =
        Vstat_linalg.Sparse.analyze_cached ~n
          ~entries:(Array.of_list !entries)
      in
      let num = Vstat_linalg.Sparse.create_numeric sym in
      let slot (r, c) =
        if r >= 0 && c >= 0 then Vstat_linalg.Sparse.slot sym ~row:r ~col:c
        else -1
      in
      ( S_sparse num,
        Vstat_linalg.Matrix.create ~rows:1 ~cols:1,
        Array.make 1 0,
        Vstat_linalg.Sparse.values num,
        Array.map (Array.map slot) coords,
        Array.init nn (fun i -> Vstat_linalg.Sparse.slot sym ~row:i ~col:i) )
    end
    else begin
      let jac = Vstat_linalg.Matrix.create ~rows:n ~cols:n in
      let slot (r, c) = if r >= 0 && c >= 0 then (r * n) + c else -1 in
      ( S_dense,
        jac,
        Array.make n 0,
        Vstat_linalg.Matrix.buffer jac,
        Array.map (Array.map slot) coords,
        Array.init nn (fun i -> (i * n) + i) )
    end
  in
  {
    elems;
    nn;
    nv = !nv;
    vsrc_index = List.rev !vsrc_index;
    charge_offset;
    n_charges = !n_charges;
    cnt = Array.make n_counters 0;
    flushed = Array.make n_counters 0;
    solver;
    jac;
    pivots;
    vals;
    slots;
    diag_slots;
    res = Array.make n 0.0;
    rhs = Array.make n 0.0;
    xws = Array.make n 0.0;
    q_work = Array.make nq 0.0;
    i_work = Array.make nq 0.0;
    dbuf = Vstat_device.Device_model.make_derivs ();
    now = Array.make 1 0.0;
    work_used = 0;
    work_cap = default_options.work_cap;
  }

let resolved_backend t =
  match t.solver with S_dense -> Dense | S_sparse _ -> Sparse

let unknowns t = t.nn + t.nv

let bump t c n = t.cnt.(c) <- t.cnt.(c) + n

let flush_counters t =
  for c = 0 to n_counters - 1 do
    let d = t.cnt.(c) - t.flushed.(c) in
    if d <> 0 then begin
      ignore (Atomic.fetch_and_add totals.(c) d);
      t.flushed.(c) <- t.cnt.(c)
    end
  done

let counter_snapshot t =
  [
    ("newton", t.cnt.(c_newton));
    ("model", t.cnt.(c_model));
    ("assembly", t.cnt.(c_assembly));
    ("lu", t.cnt.(c_lu));
    ("steps", t.cnt.(c_accepted));
    ("rejected", t.cnt.(c_rejected));
  ]

let fd_dv = 1e-6

(* Voltage of a node handle under candidate solution [x]. *)
let[@inline always] nodev x n =
  let i = Netlist.node_index n in
  if i = 0 then 0.0 else x.(i - 1)

(* Stamp helpers for [assemble], all forced inline.  Two constraints shape
   them (enforced by the [@vstat.hot] lint rule and the zero-allocation
   gate in test/test_lint.ml):
   - they must not be local closures: a closure capturing the workspace
     would be allocated on every assembly;
   - after inlining no out-of-line call with a float argument may remain:
     classic (non-flambda) ocamlopt boxes such arguments, so the Jacobian
     is stamped through flat slot indices into [t.vals] rather than
     [Matrix.add_to].
   Index convention: residual indices [i] are raw [Netlist.node_index]
   values, 1-based with 0 = ground (dropped); Jacobian positions are the
   compile-time slot indices from [t.slots] (-1 = ground, dropped), which
   address the dense matrix buffer and the sparse value array uniformly. *)
let[@inline always] res_addi res i v =
  if i > 0 then res.(i - 1) <- res.(i - 1) +. v

let[@inline always] vadd vals s v =
  if s >= 0 then vals.(s) <- vals.(s) +. v

(* One charge row of the analytic MOSFET stamp: companion current from the
   backward-Euler / trapezoidal charge difference plus the [factor]-scaled
   transcapacitance row.  [sl] is the element's 16-slot terminal block; row
   [c]'s four column slots sit at [4*c ..], matching the [dq] layout.
   Toplevel + forced inline for the reasons above. *)
let[@inline always] stamp_charge_row vals res ~sl ~factor ~trap ~q_out
    ~i_out ~q_prev ~i_prev ~off ~dq c row_idx =
  let q = q_out.(off + c) in
  let i =
    (factor *. (q -. q_prev.(off + c)))
    -. (if trap then i_prev.(off + c) else 0.0)
  in
  i_out.(off + c) <- i;
  res_addi res row_idx i;
  let o = 4 * c in
  vadd vals sl.(o) (factor *. dq.(o));
  vadd vals sl.(o + 1) (factor *. dq.(o + 1));
  vadd vals sl.(o + 2) (factor *. dq.(o + 2));
  vadd vals sl.(o + 3) (factor *. dq.(o + 3))

(* Node-handle variant for the cold finite-difference fallback. *)
let res_add res n v = res_addi res (Netlist.node_index n) v

(* Assemble Jacobian and residual at candidate [x] into the instance
   workspace (t.jac, t.res); also writes the present element charges into
   [t.q_work] and (in transient) terminal currents into [t.i_work] so the
   accepted solution can become the next step's state.  Sources are
   evaluated at time [t.now.(0)].

   Allocation-free on the linear and analytic-MOSFET paths, with two
   documented exceptions: [Waveform.value] (out-of-line, so each source
   evaluation boxes its time argument and result) and the [eval_derivs]
   indirect call (a closure call boxes its four float arguments).  The
   zero-allocation gate therefore measures a source-free RC circuit; see
   test/test_lint.ml. *)
let[@vstat.hot] assemble t ~mode ~x ~q_prev ~i_prev ~gmin ~sscale =
  let nn = t.nn in
  let vals = t.vals and res = t.res in
  let slots = t.slots in
  let q_out = t.q_work and i_out = t.i_work in
  let time = t.now.(0) in
  bump t c_assembly 1;
  Array.fill vals 0 (Array.length vals) 0.0;
  Array.fill res 0 (Array.length res) 0.0;
  let diag = t.diag_slots in
  for i = 0 to nn - 1 do
    let s = diag.(i) in
    vals.(s) <- vals.(s) +. gmin;
    res.(i) <- res.(i) +. (gmin *. x.(i))
  done;
  let elems = t.elems in
  let branch = ref 0 in
  for k = 0 to Array.length elems - 1 do
    match elems.(k) with
    | Netlist.Resistor { a; b; ohms; _ } ->
      let ia = Netlist.node_index a and ib = Netlist.node_index b in
      let sl = slots.(k) in
      let g = 1.0 /. ohms in
      let i = g *. (nodev x a -. nodev x b) in
      res_addi res ia i;
      res_addi res ib (-.i);
      vadd vals sl.(0) g;
      vadd vals sl.(1) (-.g);
      vadd vals sl.(2) (-.g);
      vadd vals sl.(3) g
    | Netlist.Capacitor { a; b; farads; _ } ->
      let ia = Netlist.node_index a and ib = Netlist.node_index b in
      let q = farads *. (nodev x a -. nodev x b) in
      let off = t.charge_offset.(k) in
      q_out.(off) <- q;
      (match mode with
      | Dc -> i_out.(off) <- 0.0
      | Tran { h; trap } ->
        let factor = (if trap then 2.0 else 1.0) /. h in
        let i =
          (factor *. (q -. q_prev.(off)))
          -. (if trap then i_prev.(off) else 0.0)
        in
        i_out.(off) <- i;
        let geq = factor *. farads in
        let sl = slots.(k) in
        res_addi res ia i;
        res_addi res ib (-.i);
        vadd vals sl.(0) geq;
        vadd vals sl.(1) (-.geq);
        vadd vals sl.(2) (-.geq);
        vadd vals sl.(3) geq)
    | Netlist.Vsource { plus; minus; wave; _ } ->
      let ip = Netlist.node_index plus and im = Netlist.node_index minus in
      let col = nn + !branch in
      let row = nn + !branch in
      incr branch;
      let sl = slots.(k) in
      let ibr = x.(col) in
      res_addi res ip ibr;
      res_addi res im (-.ibr);
      vadd vals sl.(0) 1.0;
      vadd vals sl.(1) (-1.0);
      res.(row) <-
        nodev x plus -. nodev x minus -. (sscale *. Waveform.value wave time);
      vadd vals sl.(2) 1.0;
      vadd vals sl.(3) (-1.0)
    | Netlist.Isource { from_; to_; wave; _ } ->
      let ifr = Netlist.node_index from_ and ito = Netlist.node_index to_ in
      let i = sscale *. Waveform.value wave time in
      res_addi res ifr i;
      res_addi res ito (-.i)
    | Netlist.Mosfet { d; g; s; b; dev; _ } ->
      let ni_d = Netlist.node_index d and ni_s = Netlist.node_index s in
      let vg = nodev x g and vd = nodev x d and vs = nodev x s
      and vb = nodev x b in
      let off = t.charge_offset.(k) in
      let sl = slots.(k) in
      (match dev.Vstat_device.Device_model.eval_derivs with
      | Some eval_derivs ->
        (* Analytic path: one model call yields values, conductances and
           the 4x4 transcapacitance block. *)
        bump t c_model 1;
        bump t c_analytic 1;
        eval_derivs ~vg ~vd ~vs ~vb t.dbuf;
        let db = t.dbuf in
        let did = db.Vstat_device.Device_model.did
        and dq = db.Vstat_device.Device_model.dq in
        (* Channel current: slot-block rows d (1) and s (2), columns in
           terminal order g, d, s, b. *)
        res_addi res ni_d db.v_id;
        res_addi res ni_s (-.db.v_id);
        vadd vals sl.(4) did.(0);
        vadd vals sl.(5) did.(1);
        vadd vals sl.(6) did.(2);
        vadd vals sl.(7) did.(3);
        vadd vals sl.(8) (-.did.(0));
        vadd vals sl.(9) (-.did.(1));
        vadd vals sl.(10) (-.did.(2));
        vadd vals sl.(11) (-.did.(3));
        (* Terminal charges. *)
        q_out.(off) <- db.v_qg;
        q_out.(off + 1) <- db.v_qd;
        q_out.(off + 2) <- db.v_qs;
        q_out.(off + 3) <- db.v_qb;
        (match mode with
        | Dc ->
          for c = 0 to 3 do
            i_out.(off + c) <- 0.0
          done
        | Tran { h; trap } ->
          let factor = (if trap then 2.0 else 1.0) /. h in
          stamp_charge_row vals res ~sl ~factor ~trap ~q_out ~i_out
            ~q_prev ~i_prev ~off ~dq 0 (Netlist.node_index g);
          stamp_charge_row vals res ~sl ~factor ~trap ~q_out ~i_out
            ~q_prev ~i_prev ~off ~dq 1 ni_d;
          stamp_charge_row vals res ~sl ~factor ~trap ~q_out ~i_out
            ~q_prev ~i_prev ~off ~dq 2 ni_s;
          stamp_charge_row vals res ~sl ~factor ~trap ~q_out ~i_out
            ~q_prev ~i_prev ~off ~dq 3 (Netlist.node_index b))
      | None ->
        (* Finite-difference fallback: 5 evals per linearization.  A cold
           compatibility path for models without analytic derivatives — it
           allocates by design (5 terminal-state records per device), so
           the hot-path closure bans are waived here. *)
        (let eval ~vg ~vd ~vs ~vb =
           bump t c_model 1;
           bump t c_fd 1;
           dev.Vstat_device.Device_model.eval ~vg ~vd ~vs ~vb
         in
         let base = eval ~vg ~vd ~vs ~vb in
         let perturbed =
           [|
             eval ~vg:(vg +. fd_dv) ~vd ~vs ~vb;
             eval ~vg ~vd:(vd +. fd_dv) ~vs ~vb;
             eval ~vg ~vd ~vs:(vs +. fd_dv) ~vb;
             eval ~vg ~vd ~vs ~vb:(vb +. fd_dv);
           |]
         in
         let terminals = [| g; d; s; b |] in
         (* Channel current: slot-block rows d (1) and s (2). *)
         res_add res d base.id;
         res_add res s (-.base.id);
         Array.iteri
           (fun j p ->
             let did =
               (p.Vstat_device.Device_model.id -. base.id) /. fd_dv
             in
             vadd vals sl.(4 + j) did;
             vadd vals sl.(8 + j) (-.did))
           perturbed;
         (* Terminal charges. *)
         let q_of (st : Vstat_device.Device_model.terminal_state) = function
           | 0 -> st.qg
           | 1 -> st.qd
           | 2 -> st.qs
           | _ -> st.qb
         in
         for c = 0 to 3 do
           q_out.(off + c) <- q_of base c
         done;
         match mode with
         | Dc ->
           for c = 0 to 3 do
             i_out.(off + c) <- 0.0
           done
         | Tran { h; trap } ->
           let factor = (if trap then 2.0 else 1.0) /. h in
           for c = 0 to 3 do
             let q = q_out.(off + c) in
             let i =
               (factor *. (q -. q_prev.(off + c)))
               -. (if trap then i_prev.(off + c) else 0.0)
             in
             i_out.(off + c) <- i;
             res_add res terminals.(c) i;
             Array.iteri
               (fun j p ->
                 let dq = (q_of p c -. q) /. fd_dv in
                 vadd vals sl.((4 * c) + j) (factor *. dq))
               perturbed
           done)
        [@vstat.allow "hot-path"])
  done

(* Why a Newton solve stopped; carries the data the diagnostics need. *)
type newton_outcome =
  | N_converged
  | N_max_iter of { iter : int; dmax : float }
  | N_singular of { iter : int; column : int; scale : float }
  | N_nonfinite of { iter : int }
  | N_work_cap

(* Newton iteration in place on [x] (normally [t.xws]).  On [N_converged]
   the solution is in [x] with the matching charge state in
   [t.q_work]/[t.i_work]; on any other outcome the contents of [x] are
   unspecified.  Sources are evaluated at time [t.now.(0)].

   A [while] loop over mutable locals rather than a recursive closure, and
   [Float.max]/[min]/[is_finite]/[Floatx.clamp] spelled as explicit
   branches: under classic ocamlopt the closure would be allocated per
   call and each out-of-line float call would box per unknown per
   iteration.  Outcome records are built on failure paths only, so the
   success path performs no allocation. *)
let[@vstat.hot] newton t ~mode ~x ~q_prev ~i_prev ~gmin ~sscale ~max_iter
    ~clamp =
  let n = unknowns t in
  let nn = t.nn in
  let rhs = t.rhs in
  let outcome = ref N_converged in
  let running = ref true in
  let iter = ref 0 in
  let last_dmax = ref Float.infinity in
  while !running do
    if !iter >= max_iter then begin
      outcome := N_max_iter { iter = !iter; dmax = !last_dmax };
      running := false
    end
    else if t.work_used >= t.work_cap then begin
      outcome := N_work_cap;
      running := false
    end
    else begin
      bump t c_newton 1;
      t.work_used <- t.work_used + 1;
      assemble t ~mode ~x ~q_prev ~i_prev ~gmin ~sscale;
      for i = 0 to n - 1 do
        rhs.(i) <- -.t.res.(i)
      done;
      bump t c_lu 1;
      match
        (match t.solver with
        | S_dense ->
          ignore
            (Vstat_linalg.Lu.factor_in_place t.jac ~pivots:t.pivots : int)
        | S_sparse num -> Vstat_linalg.Sparse.factor num)
      with
      | exception Vstat_linalg.Lu.Singular { column; scale } ->
        outcome := N_singular { iter = !iter; column; scale };
        running := false
      | () ->
        (match t.solver with
        | S_dense ->
          Vstat_linalg.Lu.solve_in_place ~lu:t.jac ~pivots:t.pivots rhs
        | S_sparse num -> Vstat_linalg.Sparse.solve_in_place num rhs);
        let finite = ref true in
        for i = 0 to n - 1 do
          (* [v -. v] is 0 for finite v and NaN for NaN/infinity — the
             exact comparison is the point of the test. *)
          let v = rhs.(i) in
          if ((v -. v <> 0.0) [@vstat.allow "float-compare"]) then
            finite := false
        done;
        if not !finite then begin
          outcome := N_nonfinite { iter = !iter };
          running := false
        end
        else begin
          (* Damp voltage updates; exponential nonlinearities diverge under
             full Newton steps far from the solution. *)
          let dmax = ref 0.0 in
          for i = 0 to n - 1 do
            let u = rhs.(i) in
            let d =
              if i < nn then
                if u < -.clamp then -.clamp
                else if u > clamp then clamp
                else u
              else u
            in
            x.(i) <- x.(i) +. d;
            let ad = Float.abs d in
            if i < nn then begin
              if ad > !dmax then dmax := ad
            end
            else begin
              let ax = Float.abs x.(i) in
              let rel = ad /. (if ax > 1e-9 then ax else 1e-9) in
              let m = if rel < ad then rel else ad in
              if m > !dmax then dmax := m
            end
          done;
          last_dmax := !dmax;
          if !dmax < 1e-11 then begin
            (* Final assembly at the accepted solution refreshes q/i
               state. *)
            assemble t ~mode ~x ~q_prev ~i_prev ~gmin ~sscale;
            outcome := N_converged;
            running := false
          end
          else incr iter
        end
    end
  done;
  !outcome

type op = { x : float array; time : float }

(* DC continuation chain under a given option set.  Shares the caller's
   work budget (transient runs its t=0 operating point through here), so
   the public entry points reset [t.work_used] themselves. *)
let dc_core ?guess ~opts ~time t =
  let n = unknowns t in
  let x = t.xws in
  t.now.(0) <- time;
  let from_zero () = Array.fill x 0 (Array.length x) 0.0 in
  (* Failed stages, most recent first, for failure classification. *)
  let failed_stages = ref [] in
  let run ~stage ~gmin ~sscale =
    match
      newton t ~mode:Dc ~x ~q_prev:t.q_work ~i_prev:t.i_work ~gmin ~sscale
        ~max_iter:opts.max_iter_dc ~clamp:opts.damping_clamp
    with
    | N_converged -> true
    | N_work_cap ->
      flush_counters t;
      Diag.fail ~time ~stage ~counters:(counter_snapshot t) ~analysis:"dc"
        Work_cap_exceeded "work cap %d exhausted" t.work_cap
    | outcome ->
      failed_stages := (stage, outcome) :: !failed_stages;
      false
  in
  let floor = opts.gmin_floor in
  (match guess with
  | Some g -> Array.blit g 0 x 0 n
  | None -> from_zero ());
  let converged =
    run ~stage:"direct" ~gmin:floor ~sscale:1.0
    || begin
         (* gmin stepping, finishing at the exact gmin floor. *)
         from_zero ();
         let rec gmin_steps = function
           | [] -> run ~stage:"gmin-final" ~gmin:floor ~sscale:1.0
           | g :: rest ->
             run ~stage:(Printf.sprintf "gmin=%g" g) ~gmin:g ~sscale:1.0
             && gmin_steps rest
         in
         gmin_steps opts.gmin_ladder
       end
    || begin
         (* Source stepping with a mild gmin, then a final exact solve. *)
         from_zero ();
         let rec src_steps = function
           | [] -> run ~stage:"src-final" ~gmin:floor ~sscale:1.0
           | sc :: rest ->
             run ~stage:(Printf.sprintf "src=%g" sc) ~gmin:1e-9 ~sscale:sc
             && src_steps rest
         in
         src_steps opts.source_ladder
       end
  in
  flush_counters t;
  if converged then { x = Array.sub x 0 n; time }
  else begin
    let fails = !failed_stages in
    let all_singular =
      fails <> []
      && List.for_all (function _, N_singular _ -> true | _ -> false) fails
    in
    let any_nonfinite =
      List.exists (function _, N_nonfinite _ -> true | _ -> false) fails
    in
    let kind : Diag.kind =
      if all_singular then Singular_jacobian
      else if any_nonfinite then Nonfinite_update
      else Dc_no_convergence
    in
    let stage, newton_iter, dmax =
      match fails with
      | (stage, N_max_iter { iter; dmax }) :: _ ->
        (Some stage, Some iter, Some dmax)
      | (stage, (N_singular { iter; _ } | N_nonfinite { iter })) :: _ ->
        (Some stage, Some iter, None)
      | _ -> (None, None, None)
    in
    let detail =
      match fails with
      | (_, N_singular { column; scale; _ }) :: _ ->
        Printf.sprintf "; singular pivot at unknown %d (scale %g)" column
          scale
      | _ -> ""
    in
    Diag.fail ~time ?newton_iter ?stage ?dmax ~counters:(counter_snapshot t)
      ~analysis:"dc" kind "all continuation strategies failed (%d stages)%s"
      (List.length fails) detail
  end

let dc ?options ?guess ?(time = 0.0) t =
  let opts = match options with Some o -> o | None -> current_options () in
  t.work_used <- 0;
  t.work_cap <- opts.work_cap;
  dc_core ?guess ~opts ~time t

let voltage _t op n = nodev op.x n

let branch_slot_named t ~caller name =
  match List.assoc_opt name t.vsrc_index with
  | Some k -> t.nn + k
  | None ->
    invalid_arg
      (Printf.sprintf "%s: unknown voltage source %S (known: %s)" caller name
         (match t.vsrc_index with
         | [] -> "none"
         | l -> String.concat ", " (List.map fst l)))
    [@vstat.allow "exn-discipline"]

let branch_slot t name = branch_slot_named t ~caller:"Engine.branch_slot" name

let source_current t op name =
  op.x.(branch_slot_named t ~caller:"Engine.source_current" name)

let branch_row t name = branch_slot_named t ~caller:"Engine.branch_row" name

type trace = { times : float array; states : float array array }

(* Union of waveform corner times of every independent source, sorted and
   deduplicated; the transient stepper lands on these exactly instead of
   straddling them. *)
let source_breakpoints t ~tstop =
  let acc = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Vsource { wave; _ } | Netlist.Isource { wave; _ } ->
        acc := List.rev_append (Waveform.breakpoints wave ~tstop) !acc
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Mosfet _ -> ())
    t.elems;
  let sorted = List.sort_uniq Float.compare !acc in
  Array.of_list sorted

type raw_trace = {
  raw_unknowns : int;
  raw_len : int;
  raw_times : float array;
  raw_states : float array;
}

(* The integration loop proper.  Returns the flat trace buffers unsliced so
   the steady-state loop performs no per-step allocation: materializing
   per-step rows (as {!transient} does) inherently allocates O(steps)
   arrays, and keeping it out of this function is what lets the
   zero-allocation gate difference two runs of different lengths and assert
   an exactly-zero per-step cost. *)
let[@vstat.entry] transient_raw ?options ?trap ?dt_min_factor t ~tstop ~dt =
  let opts = match options with Some o -> o | None -> current_options () in
  (* Per-call keyword overrides win over the ambient/explicit option set. *)
  let opts = match trap with Some b -> { opts with trap = b } | None -> opts in
  let opts =
    match dt_min_factor with
    | Some f -> { opts with dt_min_factor = f }
    | None -> opts
  in
  let trap = opts.trap in
  let dt = dt *. opts.dt_scale in
  t.work_used <- 0;
  t.work_cap <- opts.work_cap;
  (* The t=0 operating point shares this solve's work budget. *)
  let start = dc_core ~opts ~time:0.0 t in
  let n = unknowns t in
  let nq = Int.max t.n_charges 1 in
  (* Recover the consistent charge state at t = 0. *)
  Array.blit start.x 0 t.xws 0 n;
  t.now.(0) <- 0.0;
  assemble t ~mode:Dc ~x:t.xws ~q_prev:t.q_work ~i_prev:t.i_work
    ~gmin:opts.gmin_floor ~sscale:1.0;
  let q_prev = ref (Array.copy t.q_work) in
  let i_prev = ref (Array.make nq 0.0) in
  Array.blit t.i_work 0 !i_prev 0 nq;
  let x = Array.copy start.x in
  (* Growable trace storage: a flat row-major state buffer doubled on
     demand.  The append is written inline (not a [push] closure): a local
     closure taking a float argument would allocate the closure per run and
     box the time argument per step. *)
  let cap = ref 256 in
  let times_buf = ref (Array.make !cap 0.0) in
  let states_buf = ref (Array.make (!cap * Int.max n 1) 0.0) in
  let len = ref 0 in
  !times_buf.(0) <- 0.0;
  Array.blit x 0 !states_buf 0 n;
  len := 1;
  let bps = source_breakpoints t ~tstop in
  let n_bps = Array.length bps in
  let bp_tol = dt *. 1e-9 in
  let bp_idx = ref 0 in
  while !bp_idx < n_bps && bps.(!bp_idx) <= bp_tol do
    incr bp_idx
  done;
  let time = ref 0.0 in
  let h = ref dt in
  let dt_min = dt *. opts.dt_min_factor in
  let last_reject = ref None in
  (* Step-mode cache: in steady state every step has h = dt, so the [Tran]
     record is rebuilt only when the step size actually changes (step
     rejection, breakpoint truncation, the final partial step) instead of
     once per step. *)
  let mode = ref (Tran { h = dt; trap }) in
  let mode_h = ref dt in
  while !time < tstop -. 1e-18 do
    let rem = tstop -. !time in
    let h_nat = if !h < rem then !h else rem in
    (* Truncate (or slightly stretch) the step to land on the next source
       corner, so sharp input edges are never straddled. *)
    let hit_bp =
      !bp_idx < n_bps && bps.(!bp_idx) -. !time <= h_nat +. bp_tol
    in
    let t_next = if hit_bp then bps.(!bp_idx) else !time +. h_nat in
    let h_now = t_next -. !time in
    (* Exact equality is the correct cache test here: any other h must
       rebuild the mode record. *)
    if ((h_now <> !mode_h) [@vstat.allow "float-compare"]) then begin
      mode := Tran { h = h_now; trap };
      mode_h := h_now
    end;
    t.now.(0) <- t_next;
    Array.blit x 0 t.xws 0 n;
    match
      newton t ~mode:!mode ~x:t.xws ~q_prev:!q_prev ~i_prev:!i_prev
        ~gmin:opts.gmin_floor ~sscale:1.0 ~max_iter:opts.max_iter_tran
        ~clamp:opts.damping_clamp
    with
    | N_converged ->
      bump t c_accepted 1;
      t.work_used <- t.work_used + 1;
      time := t_next;
      Array.blit t.xws 0 x 0 n;
      (* Double-buffer swap: the accepted charges in [t.q_work]/[t.i_work]
         become the previous state, the old buffers become scratch. *)
      let qt = t.q_work in
      t.q_work <- !q_prev;
      q_prev := qt;
      let it = t.i_work in
      t.i_work <- !i_prev;
      i_prev := it;
      if !len = !cap then begin
        let cap' = 2 * !cap in
        let tb = Array.make cap' 0.0 in
        Array.blit !times_buf 0 tb 0 !len;
        times_buf := tb;
        let sb = Array.make (cap' * Int.max n 1) 0.0 in
        Array.blit !states_buf 0 sb 0 (!len * n);
        states_buf := sb;
        cap := cap'
      end;
      !times_buf.(!len) <- t_next;
      Array.blit x 0 !states_buf (!len * n) n;
      incr len;
      if hit_bp then begin
        bump t c_breakpoint 1;
        while !bp_idx < n_bps && bps.(!bp_idx) <= !time +. bp_tol do
          incr bp_idx
        done
      end;
      h := (let g = !h *. 1.4 in if g > dt then dt else g)
    | N_work_cap ->
      flush_counters t;
      Diag.fail ~time:!time ~counters:(counter_snapshot t)
        ~analysis:"transient" Work_cap_exceeded "work cap %d exhausted"
        t.work_cap
    | outcome ->
      bump t c_rejected 1;
      last_reject := Some outcome;
      h := h_now /. 2.0;
      if !h < dt_min then begin
        flush_counters t;
        (* The floor itself is the symptom; classify by what kept killing
           the steps on the way down. *)
        let kind : Diag.kind =
          match !last_reject with
          | Some (N_nonfinite _) -> Nonfinite_update
          | Some (N_singular _) -> Singular_jacobian
          | _ -> Tran_step_floor
        in
        let newton_iter, dmax =
          match !last_reject with
          | Some (N_max_iter { iter; dmax }) -> (Some iter, Some dmax)
          | Some (N_singular { iter; _ } | N_nonfinite { iter }) ->
            (Some iter, None)
          | _ -> (None, None)
        in
        let detail =
          match !last_reject with
          | Some (N_singular { column; scale; _ }) ->
            Printf.sprintf "; singular pivot at unknown %d (scale %g)"
              column scale
          | _ -> ""
        in
        Diag.fail ~time:!time ?newton_iter ?dmax
          ~stage:(Printf.sprintf "h=%.3e dt_min=%.3e" !h dt_min)
          ~counters:(counter_snapshot t) ~analysis:"transient" kind
          "step rejected below dt_min%s" detail
      end
  done;
  flush_counters t;
  {
    raw_unknowns = n;
    raw_len = !len;
    raw_times = !times_buf;
    raw_states = !states_buf;
  }

let[@vstat.entry] transient ?options ?trap ?dt_min_factor t ~tstop ~dt =
  let raw = transient_raw ?options ?trap ?dt_min_factor t ~tstop ~dt in
  let n = raw.raw_unknowns in
  {
    times = Array.sub raw.raw_times 0 raw.raw_len;
    states =
      Array.init raw.raw_len (fun k -> Array.sub raw.raw_states (k * n) n);
  }

let node_wave _t trace n =
  let i = Netlist.node_index n in
  Array.map (fun x -> if i = 0 then 0.0 else x.(i - 1)) trace.states

let source_current_wave t trace name =
  let slot = branch_slot t name in
  Array.map (fun x -> x.(slot)) trace.states

let residual_norm t op =
  let n = unknowns t in
  Array.blit op.x 0 t.xws 0 n;
  t.now.(0) <- op.time;
  assemble t ~mode:Dc ~x:t.xws ~q_prev:t.q_work ~i_prev:t.i_work ~gmin:1e-12
    ~sscale:1.0;
  flush_counters t;
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := Float.max !acc (Float.abs t.res.(i))
  done;
  !acc

(* Gather the assembled Jacobian (whatever the backend) into a fresh dense
   matrix.  Cold: used by linearize and by dense-vs-sparse cross-checks. *)
let dense_of_assembled t =
  let n = unknowns t in
  let m = Vstat_linalg.Matrix.create ~rows:n ~cols:n in
  (match t.solver with
  | S_dense ->
    let d = Vstat_linalg.Matrix.buffer m in
    Array.blit t.vals 0 d 0 (n * n)
  | S_sparse num ->
    Vstat_linalg.Sparse.iter_entries num ~f:(fun ~row ~col v ->
        Vstat_linalg.Matrix.set m row col v));
  m

let linearize t op =
  let n = unknowns t in
  Array.blit op.x 0 t.xws 0 n;
  t.now.(0) <- op.time;
  assemble t ~mode:Dc ~x:t.xws ~q_prev:t.q_work ~i_prev:t.i_work ~gmin:1e-12
    ~sscale:1.0;
  let jac_dc = dense_of_assembled t in
  (* With h = 1 and the charge state equal to the operating-point charges,
     the transient Jacobian is exactly G + C. *)
  let q0 = Array.copy t.q_work and i0 = Array.copy t.i_work in
  assemble t
    ~mode:(Tran { h = 1.0; trap = false })
    ~x:t.xws ~q_prev:q0 ~i_prev:i0 ~gmin:1e-12 ~sscale:1.0;
  flush_counters t;
  (jac_dc, Vstat_linalg.Matrix.sub (dense_of_assembled t) jac_dc)

let counters t = counters_of_array t.cnt

let reset_counters t =
  flush_counters t;
  Array.fill t.cnt 0 n_counters 0;
  Array.fill t.flushed 0 n_counters 0

let stats_newton_iterations t = t.cnt.(c_newton)
let stats_model_evaluations t = t.cnt.(c_model)
