(** Waveform and operating-point measurements used by the benchmark cells. *)

val crossing_time :
  times:float array -> values:float array -> level:float -> rising:bool ->
  float option
(** First time the waveform crosses [level] in the given direction
    (linear interpolation inside the bracketing step). *)

val propagation_delay :
  times:float array ->
  input:float array ->
  output:float array ->
  v50:float ->
  input_rising:bool ->
  output_rising:bool ->
  float option
(** 50 %-to-50 % propagation delay: time from the input crossing [v50] to
    the first output crossing of [v50] at or after it.  The search includes
    the trace segment that straddles the input edge, so an output crossing
    landing between the same two samples as the input edge is found (and
    one interpolating to before the input edge is skipped, not mistimed).
    [None] if either edge never happens. *)

val settled_value : values:float array -> tail_fraction:float -> float
(** Mean of the last [tail_fraction] of the waveform — "final" logic value. *)

val dc_sweep :
  Engine.t -> set:(float -> unit) -> values:float array ->
  probe:(Engine.op -> float) -> float array
(** Generic DC transfer sweep: for each value, [set] it (typically writing a
    {!Waveform.Var} ref), re-solve the operating point seeded with the
    previous solution, and record [probe].  Used for SRAM butterfly curves
    and I–V curve tracing at circuit level. *)
