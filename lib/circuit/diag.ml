type kind =
  | Dc_no_convergence
  | Tran_step_floor
  | Singular_jacobian
  | Nonfinite_update
  | Measure_no_crossing
  | Work_cap_exceeded
  | Injected_fault

let kind_name = function
  | Dc_no_convergence -> "dc_no_convergence"
  | Tran_step_floor -> "tran_step_floor"
  | Singular_jacobian -> "singular_jacobian"
  | Nonfinite_update -> "nonfinite_update"
  | Measure_no_crossing -> "measure_no_crossing"
  | Work_cap_exceeded -> "work_cap_exceeded"
  | Injected_fault -> "injected_fault"

type t = {
  kind : kind;
  analysis : string;
  time : float option;
  newton_iter : int option;
  stage : string option;
  dmax : float option;
  counters : (string * int) list;
  message : string;
}

exception Solver_error of t

let make ?time ?newton_iter ?stage ?dmax ?(counters = []) ~analysis kind
    message =
  { kind; analysis; time; newton_iter; stage; dmax; counters; message }

let fail ?time ?newton_iter ?stage ?dmax ?counters ~analysis kind fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Solver_error
           (make ?time ?newton_iter ?stage ?dmax ?counters ~analysis kind
              message)))
    fmt

let to_string d =
  let b = Buffer.create 128 in
  Buffer.add_string b (kind_name d.kind);
  Buffer.add_string b " [";
  Buffer.add_string b d.analysis;
  Buffer.add_char b ']';
  (match d.time with
  | Some t -> Buffer.add_string b (Printf.sprintf " t=%.4e" t)
  | None -> ());
  (match d.newton_iter with
  | Some i -> Buffer.add_string b (Printf.sprintf " iter=%d" i)
  | None -> ());
  (match d.stage with
  | Some s -> Buffer.add_string b (Printf.sprintf " stage=%s" s)
  | None -> ());
  (match d.dmax with
  | Some v -> Buffer.add_string b (Printf.sprintf " dmax=%.3e" v)
  | None -> ());
  if d.message <> "" then begin
    Buffer.add_string b ": ";
    Buffer.add_string b d.message
  end;
  if d.counters <> [] then begin
    Buffer.add_string b " (";
    Buffer.add_string b
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) d.counters));
    Buffer.add_char b ')'
  end;
  Buffer.contents b

(* Library-initialization-time registration: any program linking the circuit
   engine gets typed failure categories in Runtime censuses/budgets, and
   readable Solver_error payloads from Printexc. *)
let () =
  Vstat_runtime.Runtime.register_classifier (function
    | Solver_error d -> Some (kind_name d.kind)
    | Vstat_device.Fault_inject.Injected _ -> Some (kind_name Injected_fault)
    | Vstat_linalg.Linalg_error.Numeric_error _ -> Some "numeric_error"
    | _ -> None);
  Printexc.register_printer (function
    | Solver_error d -> Some ("Vstat_circuit.Diag.Solver_error: " ^ to_string d)
    | _ -> None)
