(* Crash-safe checkpoint/resume driver over {!Runtime.map_subset_attempt_samples}.

   The run is addressed by sample index throughout: a sample's value is a
   pure function of (index, substream, retry ladder), so persisting the
   completed successes and replaying only the incomplete indices on their
   original substreams reproduces an uninterrupted run bit-for-bit, at any
   worker count.  Failed samples are deliberately *not* persisted — they
   re-fail identically on replay (same index, same substream, same
   ladder), which keeps the snapshot format small and the failure census
   honest after a resume.

   Concurrency: workers record completed samples under one mutex; when
   [every] new samples have accumulated, the recording worker itself
   serializes the full journal and writes it through
   {!Vstat_util.Atomic_io} while holding the mutex (other workers keep
   computing and only block if they finish a sample during the flush).
   Deadlines and signals set a flag the pool polls at sample boundaries;
   the final flush then runs on the caller, so no async-signal-unsafe
   work ever happens inside a signal handler. *)

module Rng = Vstat_util.Rng

let log_src =
  Logs.Src.create "vstat.checkpoint" ~doc:"Monte Carlo checkpoint/resume"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- codecs ------------------------------------------------------------ *)

type 'a codec = {
  codec_name : string;
  encode : 'a -> string;
  decode : string -> 'a;
  observables : 'a -> float array;
}

let encode_floats vs =
  let b = Bytes.create (8 * Array.length vs) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v)) vs;
  Bytes.unsafe_to_string b

let decode_floats ~what s =
  let len = String.length s in
  if len mod 8 <> 0 then
    failwith (Printf.sprintf "%s payload: %d bytes is not a multiple of 8" what len);
  Array.init (len / 8) (fun i -> Int64.float_of_bits (String.get_int64_le s (8 * i)))

let float_codec =
  {
    codec_name = "float";
    encode = (fun v -> encode_floats [| v |]);
    decode =
      (fun s ->
        match decode_floats ~what:"float" s with
        | [| v |] -> v
        | vs ->
          failwith
            (Printf.sprintf "float payload: expected 1 value, got %d"
               (Array.length vs)));
    observables = (fun v -> [| v |]);
  }

let float_array_codec =
  {
    codec_name = "float-array";
    encode = encode_floats;
    decode = decode_floats ~what:"float-array";
    observables = Fun.id;
  }

let float_list_codec =
  {
    codec_name = "float-list";
    encode = (fun l -> encode_floats (Array.of_list l));
    decode = (fun s -> Array.to_list (decode_floats ~what:"float-list" s));
    observables = Array.of_list;
  }

let float_pair_codec =
  {
    codec_name = "float-pair";
    encode = (fun (a, b) -> encode_floats [| a; b |]);
    decode =
      (fun s ->
        match decode_floats ~what:"float-pair" s with
        | [| a; b |] -> (a, b)
        | vs ->
          failwith
            (Printf.sprintf "float-pair payload: expected 2 values, got %d"
               (Array.length vs)));
    observables = (fun (a, b) -> [| a; b |]);
  }

let float_triple_codec =
  {
    codec_name = "float-triple";
    encode = (fun (a, b, c) -> encode_floats [| a; b; c |]);
    decode =
      (fun s ->
        match decode_floats ~what:"float-triple" s with
        | [| a; b; c |] -> (a, b, c)
        | vs ->
          failwith
            (Printf.sprintf "float-triple payload: expected 3 values, got %d"
               (Array.length vs)));
    observables = (fun (a, b, c) -> [| a; b; c |]);
  }

(* A codec for values that cannot be persisted: lets a caller reuse the
   deadline/signal machinery of [run] without checkpoint [settings].
   Encoding or decoding through it is a programming error by construction
   (the driver only touches the codec when settings are present). *)
let opaque_codec name =
  let reject _ =
    invalid_arg
      (Printf.sprintf
         "Checkpoint.opaque_codec(%s): this value type cannot be persisted"
         name)
  in
  {
    codec_name = "opaque:" ^ name;
    encode = reject;
    decode = reject;
    observables = (fun _ -> [||]);
  }

(* --- settings ---------------------------------------------------------- *)

type settings = { dir : string; every : int; resume : bool }

let settings ?(every = 100) ?(resume = false) dir =
  if every < 0 then
    invalid_arg
      (Printf.sprintf "Checkpoint.settings: every must be >= 0 (got %d)" every);
  { dir; every; resume }

let sanitize_label label =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_') as c -> c
      | _ -> '_')
    label

let snapshot_path s label = Filename.concat s.dir (sanitize_label label ^ ".ckpt")
let manifest_path s label = Filename.concat s.dir (sanitize_label label ^ ".json")

(* --- outcome ----------------------------------------------------------- *)

type cause = Finished | Deadline_reached | Signalled of int

(* OCaml's Sys.sig* constants are negative portable encodings; shells and
   exit statuses speak the POSIX numbers.  Unknown encodings map to 0
   (exit 128 — "killed by an unidentified signal"). *)
let os_signal_number s =
  if s >= 0 then s
  else if s = Sys.sighup then 1
  else if s = Sys.sigint then 2
  else if s = Sys.sigquit then 3
  else if s = Sys.sigkill then 9
  else if s = Sys.sigusr1 then 10
  else if s = Sys.sigusr2 then 12
  else if s = Sys.sigpipe then 13
  else if s = Sys.sigalrm then 14
  else if s = Sys.sigterm then 15
  else 0

type 'a outcome = {
  label : string;
  n : int;
  cells : ('a, Runtime.failure) result option array;
  attempts : int array;
  stats : Runtime.stats;
  cause : cause;
  restored : int;
  completed : int;
  snapshot : string option;
  manifest : string option;
}

exception
  Interrupted of {
    label : string;
    signal : int;
    completed : int;
    n : int;
    snapshot : string option;
  }

let () =
  Printexc.register_printer (function
    | Interrupted { label; signal; completed; n; snapshot } ->
      Some
        (Printf.sprintf
           "Checkpoint.Interrupted(%s: signal %d after %d/%d samples%s)"
           label (os_signal_number signal) completed n
           (match snapshot with
           | Some p -> ", snapshot " ^ p
           | None -> ", no snapshot"))
    | _ -> None)

let is_complete o = o.completed = o.n

let values o =
  Array.of_list
    (Array.fold_right
       (fun cell acc ->
         match cell with Some (Ok v) -> v :: acc | _ -> acc)
       o.cells [])

let failures o =
  Array.fold_right
    (fun cell acc -> match cell with Some (Error f) -> f :: acc | _ -> acc)
    o.cells []

(* The evaluated cells compacted into a plain [Runtime.run] (stats.n =
   evaluated count): budget checks and downstream statistics treat a
   partial outcome exactly like a smaller run. *)
let completed_run o =
  let cells = ref [] and attempts = ref [] in
  for i = o.n - 1 downto 0 do
    match o.cells.(i) with
    | Some c ->
      cells := c :: !cells;
      attempts := o.attempts.(i) :: !attempts
    | None -> ()
  done;
  {
    Runtime.cells = Array.of_list !cells;
    attempts = Array.of_list !attempts;
    stats = { o.stats with Runtime.n = o.completed };
  }

(* --- manifest ---------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else Printf.sprintf "\"%s\"" (Float.to_string v)

let manifest_json (identity : Journal.identity) ~snapshot_file ~completed
    ~moments =
  let obs =
    String.concat ","
      (List.map
         (fun (m : Journal.moments) ->
           let acc =
             Accum.restore (m.m_count, m.m_mean, m.m_m2, m.m_lo, m.m_hi)
           in
           Printf.sprintf
             "{\"count\":%d,\"mean\":%s,\"std\":%s,\"min\":%s,\"max\":%s}"
             m.m_count
             (json_float (Accum.mean acc))
             (json_float (Accum.std acc))
             (json_float m.m_lo) (json_float m.m_hi))
         (Array.to_list moments))
  in
  Printf.sprintf
    "{\n\
    \  \"format_version\": %d,\n\
    \  \"label\": \"%s\",\n\
    \  \"fingerprint\": \"%s\",\n\
    \  \"n\": %d,\n\
    \  \"completed\": %d,\n\
    \  \"status\": \"%s\",\n\
    \  \"base_seed\": \"%Ld\",\n\
    \  \"max_attempts\": %d,\n\
    \  \"snapshot\": \"%s\",\n\
    \  \"observables\": [%s]\n\
     }\n"
    Journal.version (json_escape identity.label)
    (json_escape identity.fingerprint)
    identity.n completed
    (if completed = identity.n then "complete" else "partial")
    identity.base_seed identity.max_attempts
    (json_escape snapshot_file)
    obs

(* --- the driver -------------------------------------------------------- *)

type slot = { s_attempts : int; s_payload : string; s_obs : float array }

let run ?jobs ?on_progress ?(retry = Runtime.no_retry) ?deadline ?settings:cfg
    ?(signals = []) ?(fingerprint = "") ~codec ~label ~rng ~n ~f () =
  if n < 0 then invalid_arg "Checkpoint.run: n must be >= 0";
  (* One draw off [rng], exactly like [Runtime.map_rng_attempt_samples]:
     the same starting RNG state yields the same substream family whether
     or not the run is checkpointed. *)
  let base_seed64 = Rng.bits64 rng in
  let base_seed = Int64.to_int base_seed64 in
  let identity =
    {
      Journal.label;
      fingerprint =
        String.concat "|" [ fingerprint; "codec:" ^ codec.codec_name ];
      n;
      base_seed = base_seed64;
      max_attempts = retry.Runtime.max_attempts;
    }
  in
  let spath = Option.map (fun s -> snapshot_path s label) cfg in
  let mpath = Option.map (fun s -> manifest_path s label) cfg in
  (* Per-sample persisted state: restored entries first, then whatever
     this run completes.  Guarded by [mu] once workers start. *)
  let persisted : slot option array = Array.make n None in
  let restored_values : (int * 'a) option array = Array.make n None in
  let restored = ref 0 in
  (match (cfg, spath) with
  | Some s, Some path when s.resume && Sys.file_exists path -> (
    match Journal.read ~path with
    | Error e -> raise (Journal.Rejected e)
    | Ok snap -> (
      match
        Journal.check_identity ~path ~expected:identity snap.Journal.identity
      with
      | Error e -> raise (Journal.Rejected e)
      | Ok () ->
        Array.iter
          (fun (e : Journal.entry) ->
            let v =
              try codec.decode e.payload
              with exn ->
                raise
                  (Journal.Rejected
                     (Journal.Corrupt
                        { path;
                          detail =
                            Printf.sprintf
                              "sample %d payload does not decode as %s: %s"
                              e.index codec.codec_name
                              (Printexc.to_string exn) }))
            in
            persisted.(e.index) <-
              Some
                {
                  s_attempts = e.attempts;
                  s_payload = e.payload;
                  s_obs = codec.observables v;
                };
            restored_values.(e.index) <- Some (e.attempts, v);
            incr restored)
          snap.Journal.entries;
        Log.info (fun m ->
            m "%s: restored %d/%d samples from %s" label !restored n path)))
  | _ -> ());
  let mu = Mutex.create () in
  let dirty = ref 0 in
  let flush_locked () =
    match (cfg, spath, mpath) with
    | Some _, Some path, Some man ->
      let entries = ref [] in
      let accs = ref [||] in
      let completed = ref 0 in
      for i = n - 1 downto 0 do
        match persisted.(i) with
        | None -> ()
        | Some sl ->
          incr completed;
          entries :=
            { Journal.index = i; attempts = sl.s_attempts;
              payload = sl.s_payload }
            :: !entries;
          (* Moments are folded in descending index order here, but the
             snapshot stores exact Welford state, and the manifest's
             mean/std are observability, not the bit-identity surface
             (that surface is the per-sample payloads themselves). *)
          if Array.length !accs = 0 then
            accs := Array.map (fun _ -> Accum.create ()) sl.s_obs;
          Array.iteri (fun k x -> Accum.add !accs.(k) x) sl.s_obs
      done;
      let moments =
        Array.map
          (fun acc ->
            let m_count, m_mean, m_m2, m_lo, m_hi = Accum.dump acc in
            { Journal.m_count; m_mean; m_m2; m_lo; m_hi })
          !accs
      in
      let snap =
        { Journal.identity; entries = Array.of_list !entries; moments }
      in
      Journal.write ~path snap;
      Vstat_util.Atomic_io.write_file ~path:man
        (manifest_json identity ~snapshot_file:(Filename.basename path)
           ~completed:!completed ~moments);
      Log.debug (fun m -> m "%s: checkpointed %d/%d to %s" label !completed n path)
    | _ -> ()
  in
  let record ~index ~attempts v =
    let payload = codec.encode v in
    let obs = codec.observables v in
    Mutex.protect mu (fun () ->
        persisted.(index) <-
          Some { s_attempts = attempts; s_payload = payload; s_obs = obs };
        incr dirty;
        match cfg with
        | Some s when s.every > 0 && !dirty >= s.every ->
          flush_locked ();
          dirty := 0
        | _ -> ())
  in
  let pending =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if Option.is_none persisted.(i) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  (* OCaml encodes portable signals as negative numbers (Sys.sigterm is
     -11), so "no signal yet" needs a sentinel outside the whole signal
     range, not just the negatives. *)
  let sig_flag = Atomic.make min_int in
  let installed =
    List.map
      (fun s ->
        (s, Sys.signal s (Sys.Signal_handle (fun si -> Atomic.set sig_flag si))))
      signals
  in
  let restore_handlers () =
    List.iter (fun (s, old) -> Sys.set_signal s old) installed
  in
  let should_stop () =
    Atomic.get sig_flag <> min_int
    || (match deadline with Some d -> d () | None -> false)
  in
  let f' ~attempt i =
    let v = f ~attempt ~index:i (Rng.substream ~seed:base_seed ~index:i) in
    if Option.is_some cfg then record ~index:i ~attempts:(attempt + 1) v;
    v
  in
  let p =
    Fun.protect ~finally:restore_handlers (fun () ->
        Runtime.map_subset_attempt_samples ?jobs ?on_progress ~retry
          ~should_stop ~n ~indices:pending ~f:f' ())
  in
  (* Final flush: the snapshot always reflects the run's terminal state
     (including a complete one — resuming a finished run is a no-op). *)
  if Option.is_some cfg then Mutex.protect mu (fun () -> flush_locked ());
  let cells = Array.make n None in
  let attempts = Array.make n 0 in
  Array.iteri
    (fun i r ->
      match r with
      | Some (a, v) ->
        cells.(i) <- Some (Ok v);
        attempts.(i) <- a
      | None -> ())
    restored_values;
  Array.iteri
    (fun i s ->
      match s with
      | Some c ->
        cells.(i) <- Some c;
        attempts.(i) <- p.Runtime.slot_attempts.(i)
      | None -> ())
    p.Runtime.slots;
  let completed =
    Array.fold_left
      (fun acc c -> if Option.is_some c then acc + 1 else acc)
      0 cells
  in
  let cause =
    match p.Runtime.cause with
    | Runtime.Completed -> Finished
    | Runtime.Stopped -> (
      match Atomic.get sig_flag with
      | s when s <> min_int -> Signalled s
      | _ -> Deadline_reached)
  in
  (match cause with
  | Finished -> ()
  | Deadline_reached ->
    Log.warn (fun m ->
        m "%s: deadline reached after %d/%d samples (checkpoint %s)" label
          completed n
          (match spath with Some pth -> pth | None -> "disabled"))
  | Signalled s ->
    Log.warn (fun m ->
        m "%s: signal %d after %d/%d samples (checkpoint %s)" label
          (os_signal_number s) completed n
          (match spath with Some pth -> pth | None -> "disabled")));
  {
    label;
    n;
    cells;
    attempts;
    stats = p.Runtime.partial_stats;
    cause;
    restored = !restored;
    completed;
    snapshot = spath;
    manifest = mpath;
  }
