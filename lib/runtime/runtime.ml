let log_src =
  Logs.Src.create "vstat.runtime" ~doc:"Parallel Monte Carlo execution engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- failure classification --- *)

(* Domain layers register classifiers mapping their typed exceptions to a
   census category (e.g. the circuit engine's [Diag.Solver_error] to its
   diagnostic kind).  Registration happens at library initialization, before
   any pool exists, so reads from worker domains race with nothing. *)
let classifiers : (exn -> string option) list ref = ref []

let register_classifier f = classifiers := f :: !classifiers

let classify exn =
  let rec first = function
    | [] -> Printexc.exn_slot_name exn
    | f :: rest -> ( match f exn with Some c -> c | None -> first rest)
  in
  first !classifiers

type attempt_failure = {
  attempt : int;
  category : string;
  detail : string;
}

type failure = {
  index : int;
  exn_name : string;
  category : string;
  detail : string;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  history : attempt_failure list;
}

type stats = {
  jobs : int;
  n : int;
  wall_s : float;
  samples_per_sec : float;
  per_worker : int array;
  retried_samples : int;
  recovered_samples : int;
  tallies : (string * float) list;
}

type 'a run = {
  cells : ('a, failure) result array;
  attempts : int array;
  stats : stats;
}

(* --- retry policy --- *)

type retry_policy = {
  max_attempts : int;
  retryable : exn -> bool;
}

let retry ?(retryable = fun _ -> true) max_attempts =
  if max_attempts < 1 then
    invalid_arg "Runtime.retry: max_attempts must be >= 1";
  { max_attempts; retryable }

let no_retry = { max_attempts = 1; retryable = (fun _ -> false) }

(* --- worker-count policy --- *)

let forced_jobs = ref None

let env_jobs () =
  match Sys.getenv_opt "VSTAT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ ->
      Log.warn (fun m -> m "ignoring invalid VSTAT_JOBS=%S" s);
      None)

let default_jobs () =
  match !forced_jobs with
  | Some j -> j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> Domain.recommended_domain_count ())

let set_default_jobs j =
  if j < 1 then invalid_arg "Runtime.set_default_jobs: jobs must be >= 1";
  forced_jobs := Some j

(* --- execution --- *)

let capture ~index ~history exn backtrace =
  {
    index;
    exn_name = Printexc.exn_slot_name exn;
    category = classify exn;
    detail = Printexc.to_string exn;
    exn;
    backtrace;
    history = List.rev history;
  }

(* One sample under the retry ladder.  The ladder runs inline on the worker
   that owns index [i], so the (attempt sequence, result) is a pure function
   of [i] — scheduling and worker count cannot perturb it. *)
let[@vstat.entry] eval ~policy f i =
  let rec go attempt history =
    match f ~attempt i with
    | v -> (Ok v, attempt + 1)
    | exception exn ->
      let backtrace = Printexc.get_raw_backtrace () in
      if attempt + 1 < policy.max_attempts && policy.retryable exn then
        go (attempt + 1)
          ({ attempt; category = classify exn;
             detail = Printexc.to_string exn }
           :: history)
      else (Error (capture ~index:i ~history exn backtrace), attempt + 1)
  in
  go 0 []

(* Both execution paths run over an explicit [indices] work list (the
   identity permutation for a full run; the incomplete tail of a resumed
   run for the checkpoint machinery) and poll [should_stop] at sample
   boundaries, so a deadline watchdog or a signal flag can drain the pool
   without tearing any in-flight sample.  Result cells stay addressed by
   sample index, never by work-list position — the determinism contract
   is untouched by subsetting. *)

let[@vstat.entry] run_serial ?on_progress ~should_stop ~policy ~n ~indices ~f () =
  let m = Array.length indices in
  let cells = Array.make n None in
  let attempts = Array.make n 0 in
  let chunk = Int.max 1 (m / 20) in
  let k = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !k < m do
    if should_stop () then stopped := true
    else begin
      let i = indices.(!k) in
      let cell, used = eval ~policy f i in
      attempts.(i) <- used;
      cells.(i) <- Some cell;
      incr k;
      match on_progress with
      | Some cb when !k mod chunk = 0 || !k = m -> cb ~completed:!k ~n:m
      | _ -> ()
    end
  done;
  (cells, attempts, [| !k |])

let[@vstat.entry] run_parallel ?on_progress ~should_stop ~policy ~jobs ~n ~indices ~f () =
  let m = Array.length indices in
  let cells = Array.make n None in
  let attempts = Array.make n 0 in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let stop_flag = Atomic.make false in
  let per_worker = Array.make jobs 0 in
  let progress_mutex = Mutex.create () in
  (* Small chunks give dynamic load balancing (samples have very uneven
     cost: a DFF bisection vs a device metric); the atomic counter is the
     only shared mutable word on the hot path. *)
  let chunk = Int.max 1 (m / (jobs * 8)) in
  let worker w =
    let rec loop () =
      if Atomic.get stop_flag || should_stop () then
        Atomic.set stop_flag true
      else begin
        let start = Atomic.fetch_and_add next chunk in
        if start < m then begin
          let stop = Int.min m (start + chunk) in
          let k = ref start in
          while !k < stop && not (Atomic.get stop_flag) do
            let i = indices.(!k) in
            let cell, used = eval ~policy f i in
            attempts.(i) <- used;
            cells.(i) <- Some cell;
            incr k;
            if should_stop () then Atomic.set stop_flag true
          done;
          let batch = !k - start in
          per_worker.(w) <- per_worker.(w) + batch;
          let total = Atomic.fetch_and_add completed batch + batch in
          (match on_progress with
          | Some cb ->
            Mutex.protect progress_mutex (fun () -> cb ~completed:total ~n:m)
          | None -> ());
          loop ()
        end
      end
    in
    loop ()
  in
  let helpers =
    Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
  in
  worker 0;
  Array.iter Domain.join helpers;
  (cells, attempts, per_worker)

let failed_count run =
  Array.fold_left
    (fun acc -> function Ok _ -> acc | Error _ -> acc + 1)
    0 run.cells

let ok_count run = run.stats.n - failed_count run

type stop_cause = Completed | Stopped

type 'a partial = {
  slots : ('a, failure) result option array;
  slot_attempts : int array;
  partial_stats : stats;
  cause : stop_cause;
  evaluated : int;
}

let run_core ?jobs ?on_progress ?(should_stop = fun () -> false) ~policy ~n
    ~indices ~f () =
  let m = Array.length indices in
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> default_jobs ()
  in
  let jobs = Int.max 1 (Int.min jobs m) in
  let t0 = Unix.gettimeofday () in
  let slots, slot_attempts, per_worker =
    if jobs = 1 then
      run_serial ?on_progress ~should_stop ~policy ~n ~indices ~f ()
    else
      run_parallel ?on_progress ~should_stop ~policy ~jobs ~n ~indices ~f ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let evaluated = Array.fold_left (fun acc k -> acc + k) 0 per_worker in
  let retried_samples = ref 0 and recovered_samples = ref 0 in
  Array.iteri
    (fun i used ->
      if used > 1 then begin
        incr retried_samples;
        match slots.(i) with
        | Some (Ok _) -> incr recovered_samples
        | Some (Error _) | None -> ()
      end)
    slot_attempts;
  let partial_stats =
    {
      jobs;
      n = m;
      wall_s;
      samples_per_sec =
        (if wall_s > 0.0 then Float.of_int evaluated /. wall_s
         else Float.infinity);
      per_worker;
      retried_samples = !retried_samples;
      recovered_samples = !recovered_samples;
      tallies = [];
    }
  in
  {
    slots;
    slot_attempts;
    partial_stats;
    cause = (if evaluated = m then Completed else Stopped);
    evaluated;
  }

let map_subset_attempt_samples ?jobs ?on_progress ?(retry = no_retry)
    ?should_stop ~n ~indices ~f () =
  if n < 0 then
    invalid_arg "Runtime.map_subset_attempt_samples: n must be >= 0";
  Array.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf
             "Runtime.map_subset_attempt_samples: index %d outside [0,%d)" i
             n))
    indices;
  run_core ?jobs ?on_progress ?should_stop ~policy:retry ~n ~indices ~f ()

let map_attempt_samples ?jobs ?on_progress ?(retry = no_retry) ~n ~f () =
  if n < 0 then invalid_arg "Runtime.map_samples: n must be >= 0";
  let p =
    run_core ?jobs ?on_progress ~policy:retry ~n
      ~indices:(Array.init n (fun i -> i))
      ~f ()
  in
  let cells =
    Array.map (function Some c -> c | None -> assert false) p.slots
  in
  let stats = { p.partial_stats with n } in
  let run = { cells; attempts = p.slot_attempts; stats } in
  Log.info (fun m ->
      m "map_samples: n=%d jobs=%d wall=%.3fs rate=%.0f/s failed=%d \
         retried=%d recovered=%d"
        n stats.jobs stats.wall_s stats.samples_per_sec (failed_count run)
        stats.retried_samples stats.recovered_samples);
  run

let map_samples ?jobs ?on_progress ?retry ~n ~f () =
  map_attempt_samples ?jobs ?on_progress ?retry ~n
    ~f:(fun ~attempt:_ i -> f i)
    ()

let map_rng_attempt_samples ?jobs ?on_progress ?retry ~rng ~n ~f () =
  let seed = Int64.to_int (Vstat_util.Rng.bits64 rng) in
  (* Every attempt at sample [i] restarts from a fresh copy of the same
     substream, so a sample that succeeds on attempt k draws exactly the
     variates the first attempt saw. *)
  map_attempt_samples ?jobs ?on_progress ?retry ~n
    ~f:(fun ~attempt i ->
      f ~attempt ~index:i (Vstat_util.Rng.substream ~seed ~index:i))
    ()

let map_rng_samples ?jobs ?on_progress ?retry ~rng ~n ~f () =
  map_rng_attempt_samples ?jobs ?on_progress ?retry ~rng ~n
    ~f:(fun ~attempt:_ ~index:_ rng -> f rng)
    ()

(* --- result access --- *)

let values run =
  Array.of_list
    (Array.fold_right
       (fun cell acc -> match cell with Ok v -> v :: acc | Error _ -> acc)
       run.cells [])

let failures run =
  Array.fold_right
    (fun cell acc -> match cell with Ok _ -> acc | Error f -> f :: acc)
    run.cells []

let failure_census run =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.category)))
    (failures run);
  let census = Hashtbl.fold (fun name c acc -> (name, c) :: acc) tbl [] in
  (* Count descending, then name ascending — with explicit monomorphic
     comparators so the ordering is independent of polymorphic-compare
     details and the Hashtbl's internal bucket order. *)
  List.sort
    (fun (na, ca) (nb, cb) ->
      match Int.compare cb ca with 0 -> String.compare na nb | c -> c)
    census

let census_to_string census =
  String.concat ", "
    (List.map (fun (name, c) -> Printf.sprintf "%s:%d" name c) census)

let check_budget ?(label = "runtime") ~max_failure_frac run =
  let n = run.stats.n in
  let failed = failed_count run in
  (* An empty run trivially meets any budget; guard it explicitly so the
     vacuous 0-failures-of-0 case can neither warn nor raise. *)
  if n > 0 && failed > 0 then begin
    let census = failure_census run in
    let first =
      match failures run with f :: _ -> f.detail | [] -> assert false
    in
    if Float.of_int failed > max_failure_frac *. Float.of_int n then
      failwith
        (Printf.sprintf
           "%s: %d/%d samples failed, over the %.0f%% failure budget \
            (by category: %s; first: %s)"
           label failed n
           (100.0 *. max_failure_frac)
           (census_to_string census) first)
    else
      Log.warn (fun m ->
          m "%s: %d/%d samples failed within the %.0f%% budget \
             (by category: %s; first: %s)"
            label failed n
            (100.0 *. max_failure_frac)
            (census_to_string census) first)
  end

let reraise_first_failure run =
  match failures run with
  | [] -> ()
  | f :: _ -> Printexc.raise_with_backtrace f.exn f.backtrace

let with_tallies tallies stats = { stats with tallies }

let pp_stats ppf s =
  Format.fprintf ppf
    "n=%d jobs=%d wall=%.3fs rate=%.0f samples/s per-worker=[%s]" s.n s.jobs
    s.wall_s s.samples_per_sec
    (String.concat ";" (Array.to_list (Array.map string_of_int s.per_worker)));
  if s.retried_samples > 0 then
    Format.fprintf ppf " retried=%d recovered=%d" s.retried_samples
      s.recovered_samples;
  List.iter
    (fun (name, v) ->
      if Float.is_integer v then Format.fprintf ppf " %s=%.0f" name v
      else Format.fprintf ppf " %s=%g" name v)
    s.tallies
