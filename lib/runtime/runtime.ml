let log_src =
  Logs.Src.create "vstat.runtime" ~doc:"Parallel Monte Carlo execution engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type failure = {
  index : int;
  exn_name : string;
  detail : string;
  exn : exn;
}

type stats = {
  jobs : int;
  n : int;
  wall_s : float;
  samples_per_sec : float;
  per_worker : int array;
  tallies : (string * float) list;
}

type 'a run = {
  cells : ('a, failure) result array;
  stats : stats;
}

(* --- worker-count policy --- *)

let forced_jobs = ref None

let env_jobs () =
  match Sys.getenv_opt "VSTAT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ ->
      Log.warn (fun m -> m "ignoring invalid VSTAT_JOBS=%S" s);
      None)

let default_jobs () =
  match !forced_jobs with
  | Some j -> j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> Domain.recommended_domain_count ())

let set_default_jobs j =
  if j < 1 then invalid_arg "Runtime.set_default_jobs: jobs must be >= 1";
  forced_jobs := Some j

(* --- execution --- *)

let capture index exn =
  { index; exn_name = Printexc.exn_slot_name exn;
    detail = Printexc.to_string exn; exn }

let eval f i = match f i with v -> Ok v | exception e -> Error (capture i e)

let run_serial ?on_progress ~n ~f () =
  let chunk = Int.max 1 (n / 20) in
  Array.init n (fun i ->
      let cell = eval f i in
      (match on_progress with
      | Some cb when (i + 1) mod chunk = 0 || i = n - 1 ->
        cb ~completed:(i + 1) ~n
      | _ -> ());
      cell)

let run_parallel ?on_progress ~jobs ~n ~f () =
  let cells = Array.make n None in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let per_worker = Array.make jobs 0 in
  let progress_mutex = Mutex.create () in
  (* Small chunks give dynamic load balancing (samples have very uneven
     cost: a DFF bisection vs a device metric); the atomic counter is the
     only shared mutable word on the hot path. *)
  let chunk = Int.max 1 (n / (jobs * 8)) in
  let worker w =
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = Int.min n (start + chunk) in
        for i = start to stop - 1 do
          cells.(i) <- Some (eval f i)
        done;
        per_worker.(w) <- per_worker.(w) + (stop - start);
        let total =
          Atomic.fetch_and_add completed (stop - start) + (stop - start)
        in
        (match on_progress with
        | Some cb ->
          Mutex.protect progress_mutex (fun () -> cb ~completed:total ~n)
        | None -> ());
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
  in
  worker 0;
  Array.iter Domain.join helpers;
  let cells =
    Array.map (function Some c -> c | None -> assert false) cells
  in
  (cells, per_worker)

let failed_count run =
  Array.fold_left
    (fun acc -> function Ok _ -> acc | Error _ -> acc + 1)
    0 run.cells

let ok_count run = run.stats.n - failed_count run

let map_samples ?jobs ?on_progress ~n ~f () =
  if n < 0 then invalid_arg "Runtime.map_samples: n must be >= 0";
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> default_jobs ()
  in
  let jobs = Int.max 1 (Int.min jobs n) in
  let t0 = Unix.gettimeofday () in
  let cells, per_worker =
    if jobs = 1 then (run_serial ?on_progress ~n ~f (), [| n |])
    else run_parallel ?on_progress ~jobs ~n ~f ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats =
    {
      jobs;
      n;
      wall_s;
      samples_per_sec =
        (if wall_s > 0.0 then Float.of_int n /. wall_s else Float.infinity);
      per_worker;
      tallies = [];
    }
  in
  let run = { cells; stats } in
  Log.info (fun m ->
      m "map_samples: n=%d jobs=%d wall=%.3fs rate=%.0f/s failed=%d" n jobs
        wall_s stats.samples_per_sec (failed_count run));
  run

let map_rng_samples ?jobs ?on_progress ~rng ~n ~f () =
  let seed = Int64.to_int (Vstat_util.Rng.bits64 rng) in
  map_samples ?jobs ?on_progress ~n
    ~f:(fun i -> f (Vstat_util.Rng.substream ~seed ~index:i))
    ()

(* --- result access --- *)

let values run =
  Array.of_list
    (Array.fold_right
       (fun cell acc -> match cell with Ok v -> v :: acc | Error _ -> acc)
       run.cells [])

let failures run =
  Array.fold_right
    (fun cell acc -> match cell with Ok _ -> acc | Error f -> f :: acc)
    run.cells []

let failure_census run =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.exn_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.exn_name)))
    (failures run);
  let census = Hashtbl.fold (fun name c acc -> (name, c) :: acc) tbl [] in
  List.sort (fun (na, ca) (nb, cb) -> compare (cb, na) (ca, nb)) census

let census_to_string census =
  String.concat ", "
    (List.map (fun (name, c) -> Printf.sprintf "%s:%d" name c) census)

let check_budget ?(label = "runtime") ~max_failure_frac run =
  let failed = failed_count run in
  if failed > 0 then begin
    let n = run.stats.n in
    let census = failure_census run in
    let first =
      match failures run with f :: _ -> f.detail | [] -> assert false
    in
    if Float.of_int failed > max_failure_frac *. Float.of_int n then
      failwith
        (Printf.sprintf
           "%s: %d/%d samples failed, over the %.0f%% failure budget \
            (by exception: %s; first: %s)"
           label failed n
           (100.0 *. max_failure_frac)
           (census_to_string census) first)
    else
      Log.warn (fun m ->
          m "%s: %d/%d samples failed within the %.0f%% budget \
             (by exception: %s; first: %s)"
            label failed n
            (100.0 *. max_failure_frac)
            (census_to_string census) first)
  end

let reraise_first_failure run =
  match failures run with [] -> () | f :: _ -> raise f.exn

let with_tallies tallies stats = { stats with tallies }

let pp_stats ppf s =
  Format.fprintf ppf
    "n=%d jobs=%d wall=%.3fs rate=%.0f samples/s per-worker=[%s]" s.n s.jobs
    s.wall_s s.samples_per_sec
    (String.concat ";" (Array.to_list (Array.map string_of_int s.per_worker)));
  List.iter
    (fun (name, v) ->
      if Float.is_integer v then Format.fprintf ppf " %s=%.0f" name v
      else Format.fprintf ppf " %s=%g" name v)
    s.tallies
