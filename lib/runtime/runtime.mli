(** Deterministic, fault-tolerant parallel Monte Carlo execution engine.

    Every Monte Carlo loop in the repository routes through this module.
    The contract:

    - {b Determinism.}  Work is addressed by sample index.  Combined with
      counter-indexed RNG substreams ({!Vstat_util.Rng.substream}), sample
      [i] computes exactly the same value whether the pool runs 1 worker or
      16, in any scheduling order: results land in an index-stable array,
      so [jobs:1] and [jobs:n] outputs are bit-identical.
    - {b Fault policy.}  A sample that raises is captured as an [Error]
      cell (constructor name + printed exception), never a torn run.  Call
      sites enforce a failure budget with {!check_budget}, which raises
      [Failure] with a per-constructor failure census, or re-raise the
      first failure with {!reraise_first_failure} for zero-tolerance paths.
    - {b Observability.}  Each run reports wall time, throughput and
      per-worker sample tallies ({!stats}); [Logs] gets a debug line per
      run ("vstat.runtime" source).

    [jobs:1] executes on the calling domain with no pool, no atomics and no
    per-sample allocation beyond the result cells — the serial fast path.
    [jobs:n] spawns [n-1] additional domains (OCaml 5) and chunk-steals
    indices off a shared counter. *)

type failure = {
  index : int;        (** sample index that raised *)
  exn_name : string;  (** exception constructor, e.g. ["Failure"] *)
  detail : string;    (** [Printexc.to_string] of the exception *)
  exn : exn;          (** the exception itself, for re-raising *)
}

type stats = {
  jobs : int;               (** workers actually used *)
  n : int;                  (** samples requested *)
  wall_s : float;           (** wall-clock time of the run *)
  samples_per_sec : float;
  per_worker : int array;   (** samples executed by each worker; length [jobs] *)
  tallies : (string * float) list;
      (** Named work counters attached by the call site (empty by default).
          The runtime itself has no knowledge of what a sample does;
          domain-specific layers attach e.g. the circuit engine's Newton /
          assembly / LU counts via {!with_tallies} so per-phase workload
          travels with the run statistics. *)
}

type 'a run = {
  cells : ('a, failure) result array;  (** index-stable, length [n] *)
  stats : stats;
}

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the value forced by
    {!set_default_jobs} if any, else the [VSTAT_JOBS] environment variable,
    else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Force the process-wide default ([--jobs] in the CLIs). *)

val map_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  n:int ->
  f:(int -> 'a) ->
  unit ->
  'a run
(** [map_samples ~n ~f] evaluates [f i] for [i] in [0 .. n-1] across the
    worker pool.  [f] must be safe to call concurrently from several
    domains (pure up to private state — true of all samplers here, which
    derive everything from their substream index).  [on_progress] is
    invoked under a mutex from worker context after each chunk. *)

val map_rng_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  f:(Vstat_util.Rng.t -> 'a) ->
  unit ->
  'a run
(** RNG-threading convenience: derives a base seed from [rng] (advancing it
    by one draw) and hands sample [i] the substream
    [Rng.substream ~seed:base ~index:i].  This is the canonical way to make
    an existing [~rng] Monte Carlo loop order- and worker-independent. *)

val values : 'a run -> 'a array
(** Successful samples in index order (failures skipped). *)

val failures : 'a run -> failure list
(** In index order. *)

val ok_count : 'a run -> int
val failed_count : 'a run -> int

val failure_census : 'a run -> (string * int) list
(** Failure counts per exception constructor, most frequent first. *)

val check_budget : ?label:string -> max_failure_frac:float -> 'a run -> unit
(** Enforce the failure budget: if more than [max_failure_frac * n] samples
    failed, raise [Failure] whose message includes the failed/total counts
    and the per-constructor census.  Surviving failures below the budget are
    reported once through [Logs.warn] (constructor counts, first detail)
    rather than one line per sample. *)

val reraise_first_failure : 'a run -> unit
(** Zero-tolerance policy: re-raise the exception of the lowest-index
    failed sample, if any. *)

val with_tallies : (string * float) list -> stats -> stats
(** A copy of [stats] carrying the given named work counters; {!pp_stats}
    appends them as [name=value] pairs. *)

val pp_stats : Format.formatter -> stats -> unit
