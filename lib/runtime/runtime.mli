(** Deterministic, fault-tolerant parallel Monte Carlo execution engine.

    Every Monte Carlo loop in the repository routes through this module.
    The contract:

    - {b Determinism.}  Work is addressed by sample index.  Combined with
      counter-indexed RNG substreams ({!Vstat_util.Rng.substream}), sample
      [i] computes exactly the same value whether the pool runs 1 worker or
      16, in any scheduling order: results land in an index-stable array,
      so [jobs:1] and [jobs:n] outputs are bit-identical.  The retry ladder
      preserves this: attempts run inline on the worker that owns the
      sample, every attempt restarts from a fresh copy of the sample's own
      substream, and the attempt count at which a sample succeeds is a pure
      function of the sample index.
    - {b Fault policy.}  A sample that raises is captured as an [Error]
      cell carrying a typed category (via {!register_classifier}), the
      printed exception, the raw backtrace and the per-attempt failure
      history — never a torn run.  Call sites enforce a failure budget with
      {!check_budget}, which raises [Failure] with a per-category failure
      census, or re-raise the first failure (with its original backtrace)
      with {!reraise_first_failure} for zero-tolerance paths.  An optional
      {!retry_policy} re-runs failed samples with an escalating attempt
      counter before they are declared dead.
    - {b Observability.}  Each run reports wall time, throughput,
      per-worker sample tallies and retry/recovery counts ({!stats});
      [Logs] gets a debug line per run ("vstat.runtime" source).

    [jobs:1] executes on the calling domain with no pool, no atomics and no
    per-sample allocation beyond the result cells — the serial fast path.
    [jobs:n] spawns [n-1] additional domains (OCaml 5) and chunk-steals
    indices off a shared counter. *)

type attempt_failure = {
  attempt : int;      (** 0-based attempt number that failed *)
  category : string;  (** classified category of that attempt's exception *)
  detail : string;    (** [Printexc.to_string] of that attempt's exception *)
}

type failure = {
  index : int;        (** sample index that raised *)
  exn_name : string;  (** exception constructor, e.g. ["Failure"] *)
  category : string;
      (** classified failure category: the first registered classifier's
          answer, falling back to [exn_name].  The circuit layer maps its
          typed solver diagnostics here (e.g. ["dc_no_convergence"],
          ["injected_fault"]), so budgets and censuses report {e why}
          samples die rather than which constructor carried the news. *)
  detail : string;    (** [Printexc.to_string] of the final exception *)
  exn : exn;          (** the final exception itself, for re-raising *)
  backtrace : Printexc.raw_backtrace;
      (** backtrace captured where the final attempt raised *)
  history : attempt_failure list;
      (** earlier failed attempts under the retry ladder, oldest first
          (empty when the first attempt was also the last) *)
}

type stats = {
  jobs : int;               (** workers actually used *)
  n : int;                  (** samples requested *)
  wall_s : float;           (** wall-clock time of the run *)
  samples_per_sec : float;
  per_worker : int array;   (** samples executed by each worker; length [jobs] *)
  retried_samples : int;    (** samples that needed more than one attempt *)
  recovered_samples : int;  (** retried samples that eventually succeeded *)
  tallies : (string * float) list;
      (** Named work counters attached by the call site (empty by default).
          The runtime itself has no knowledge of what a sample does;
          domain-specific layers attach e.g. the circuit engine's Newton /
          assembly / LU counts via {!with_tallies} so per-phase workload
          travels with the run statistics. *)
}

type 'a run = {
  cells : ('a, failure) result array;  (** index-stable, length [n] *)
  attempts : int array;
      (** attempts consumed per sample (1 = first try); length [n] *)
  stats : stats;
}

val register_classifier : (exn -> string option) -> unit
(** Register a failure classifier consulted by {!failure_census} and
    {!failure} capture (most recently registered first).  Classifiers are
    registered once at library-initialization time; returning [None] passes
    to the next classifier, ending at the exception constructor name. *)

type retry_policy = {
  max_attempts : int;        (** total attempts per sample; >= 1 *)
  retryable : exn -> bool;   (** which failures may be retried *)
}

val retry : ?retryable:(exn -> bool) -> int -> retry_policy
(** [retry k] allows up to [k] attempts per sample (default [retryable]:
    everything).  @raise Invalid_argument when [k < 1]. *)

val no_retry : retry_policy
(** Exactly one attempt — the default policy. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the value forced by
    {!set_default_jobs} if any, else the [VSTAT_JOBS] environment variable,
    else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Force the process-wide default ([--jobs] in the CLIs). *)

val map_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  ?retry:retry_policy ->
  n:int ->
  f:(int -> 'a) ->
  unit ->
  'a run
(** [map_samples ~n ~f] evaluates [f i] for [i] in [0 .. n-1] across the
    worker pool.  [f] must be safe to call concurrently from several
    domains (pure up to private state — true of all samplers here, which
    derive everything from their substream index).  [on_progress] is
    invoked under a mutex from worker context after each chunk.  With
    [retry], a failed sample is re-run in place (same index, same worker)
    up to [max_attempts] times; use {!map_attempt_samples} when retries
    should escalate solver options. *)

val map_attempt_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  ?retry:retry_policy ->
  n:int ->
  f:(attempt:int -> int -> 'a) ->
  unit ->
  'a run
(** Like {!map_samples} but [f] also receives the 0-based attempt number,
    so the call site can escalate per attempt (halve the step, raise the
    iteration cap, extend the gmin ladder, ...).  Determinism contract: the
    value of sample [i] is whatever [f ~attempt:k i] first returns without
    raising, and since the ladder is evaluated inline per index, that value
    is identical under any [jobs] count. *)

type stop_cause =
  | Completed  (** every scheduled index was evaluated *)
  | Stopped    (** the pool drained early ([should_stop] fired) *)

type 'a partial = {
  slots : ('a, failure) result option array;
      (** length [n], addressed by sample index; [None] = not evaluated
          in this run (not scheduled, or the pool stopped first) *)
  slot_attempts : int array;
      (** attempts consumed per sample; 0 = not evaluated *)
  partial_stats : stats;   (** [n] = scheduled indices, not the domain *)
  cause : stop_cause;
  evaluated : int;         (** scheduled indices actually evaluated *)
}

val map_subset_attempt_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  ?retry:retry_policy ->
  ?should_stop:(unit -> bool) ->
  n:int ->
  indices:int array ->
  f:(attempt:int -> int -> 'a) ->
  unit ->
  'a partial
(** The checkpoint/resume entry point: evaluate only [indices] (any
    subset of [0, n)), polling [should_stop] at sample boundaries — a
    deadline watchdog or signal flag drains the pool gracefully without
    tearing an in-flight sample (its retry ladder runs to completion).
    Results land in index-addressed [slots], so evaluating a subset
    yields bit-identical cells to the same indices of a full run, under
    any [jobs].  @raise Invalid_argument if an index falls outside
    [0, n). *)

val map_rng_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  ?retry:retry_policy ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  f:(Vstat_util.Rng.t -> 'a) ->
  unit ->
  'a run
(** RNG-threading convenience: derives a base seed from [rng] (advancing it
    by one draw) and hands sample [i] the substream
    [Rng.substream ~seed:base ~index:i].  This is the canonical way to make
    an existing [~rng] Monte Carlo loop order- and worker-independent.
    Under [retry], every attempt restarts from a fresh copy of the same
    substream. *)

val map_rng_attempt_samples :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  ?retry:retry_policy ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  f:(attempt:int -> index:int -> Vstat_util.Rng.t -> 'a) ->
  unit ->
  'a run
(** {!map_rng_samples} with the attempt number and sample index exposed:
    the substream passed for sample [index] is identical on every attempt,
    so escalated re-runs see exactly the variates the first attempt saw. *)

val values : 'a run -> 'a array
(** Successful samples in index order (failures skipped). *)

val failures : 'a run -> failure list
(** In index order. *)

val ok_count : 'a run -> int
val failed_count : 'a run -> int

val failure_census : 'a run -> (string * int) list
(** Failure counts per classified category, most frequent first. *)

val census_to_string : (string * int) list -> string
(** ["cat:count, ..."] — the census rendering used in budget messages. *)

val check_budget : ?label:string -> max_failure_frac:float -> 'a run -> unit
(** Enforce the failure budget: if more than [max_failure_frac * n] samples
    failed, raise [Failure] whose message includes the failed/total counts
    and the per-category census.  Surviving failures below the budget are
    reported once through [Logs.warn] (category counts, first detail)
    rather than one line per sample.  An empty run ([n = 0]) passes any
    budget silently. *)

val reraise_first_failure : 'a run -> unit
(** Zero-tolerance policy: re-raise the exception of the lowest-index
    failed sample, if any, with the backtrace captured where it originally
    raised ([Printexc.raise_with_backtrace]). *)

val with_tallies : (string * float) list -> stats -> stats
(** A copy of [stats] carrying the given named work counters; {!pp_stats}
    appends them as [name=value] pairs. *)

val pp_stats : Format.formatter -> stats -> unit
