(** Monotonic wall-clock deadlines for Monte Carlo runs.

    A watchdog is a [unit -> bool] closure polled by the runtime's domain
    pool at sample boundaries; once it returns [true] the pool stops
    claiming work and the run returns partial.  The clock is
    CLOCK_MONOTONIC (via the bechamel stub), so the deadline is immune to
    NTP steps; it is the single sanctioned wall-clock read under the
    [determinism-wallclock] lint rule — deadlines decide {e how many}
    samples run, never what any sample computes, and checkpoint/resume
    keeps the surviving samples bit-identical to an uninterrupted run. *)

val now_ns : unit -> int64
(** CLOCK_MONOTONIC, nanoseconds from an unspecified epoch. *)

val watchdog : seconds:float -> unit -> bool
(** [watchdog ~seconds] starts the budget now; the returned closure
    reports whether the budget is exhausted.  Thread-safe (reads the
    clock, no mutable state).  @raise Invalid_argument if
    [seconds <= 0]. *)

val never : unit -> bool
(** The no-deadline watchdog: always [false]. *)

val combine : (unit -> bool) -> (unit -> bool) -> unit -> bool
(** Stop when either watchdog fires. *)
