(* Durable run-journal snapshots for checkpoint/resume.

   One snapshot is a single self-validating binary blob:

     magic "VSTATCKP" | u32 format version
     identity: label | fingerprint | n | base_seed | max_attempts
     completion bitmap (ceil(n/8) bytes, bit i = sample i completed)
     per-observable streaming moments (count/mean/M2/lo/hi)
     completed entries: (index, attempts, payload) sorted by index
     u32 CRC-32 footer over every preceding byte

   All integers little-endian.  The reader validates magic, version and
   CRC before parsing, bounds-checks every field, and cross-checks the
   bitmap against the entry list — a corrupted, truncated or
   version-skewed snapshot is rejected with a typed {!error}, never
   silently merged.  Durability comes from {!Vstat_util.Atomic_io}
   (write-temp -> fsync -> atomic rename), so a crash mid-flush leaves
   the previous snapshot intact. *)

type identity = {
  label : string;
  fingerprint : string;
  n : int;
  base_seed : int64;
  max_attempts : int;
}

type entry = { index : int; attempts : int; payload : string }

type moments = {
  m_count : int;
  m_mean : float;
  m_m2 : float;
  m_lo : float;
  m_hi : float;
}

type snapshot = {
  identity : identity;
  entries : entry array;
  moments : moments array;
}

(* Every payload names the snapshot file it describes, so a layer serving
   many journals (the result cache in Vstat_service) can report *which*
   snapshot is bad without re-threading the path out of band.  Errors
   produced away from the filesystem (decoding a string in memory) carry
   {!in_memory}. *)
type error =
  | Io of { path : string; detail : string }
  | Bad_magic of { path : string }
  | Version_skew of { path : string; found : int; expected : int }
  | Corrupt of { path : string; detail : string }
  | Mismatch of { path : string; field : string; expected : string; found : string }

exception Rejected of error

let in_memory = "<memory>"

let error_path = function
  | Io { path; _ }
  | Bad_magic { path }
  | Version_skew { path; _ }
  | Corrupt { path; _ }
  | Mismatch { path; _ } -> path

let error_to_string = function
  | Io { path; detail } ->
    Printf.sprintf "snapshot %s: IO error: %s" path detail
  | Bad_magic { path } ->
    Printf.sprintf "snapshot %s: not a vstat checkpoint snapshot (bad magic)"
      path
  | Version_skew { path; found; expected } ->
    Printf.sprintf
      "snapshot %s: format version %d, this build reads version %d" path
      found expected
  | Corrupt { path; detail } ->
    Printf.sprintf "snapshot %s: corrupt: %s" path detail
  | Mismatch { path; field; expected; found } ->
    Printf.sprintf
      "snapshot %s belongs to a different run: %s is %s, expected %s" path
      field found expected

let () =
  Printexc.register_printer (function
    | Rejected e -> Some (Printf.sprintf "Journal.Rejected(%s)" (error_to_string e))
    | _ -> None)

let magic = "VSTATCKP"
let version = 1

(* --- encoding ---------------------------------------------------------- *)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_i64 b v = Buffer.add_int64_le b v
let add_f64 b v = add_i64 b (Int64.bits_of_float v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let bitmap_of_entries ~n entries =
  let bm = Bytes.make ((n + 7) / 8) '\000' in
  Array.iter
    (fun e ->
      if e.index < 0 || e.index >= n then
        invalid_arg
          (Printf.sprintf "Journal.encode: entry index %d outside [0,%d)"
             e.index n);
      let byte = e.index lsr 3 and bit = e.index land 7 in
      Bytes.set bm byte
        (Char.chr (Char.code (Bytes.get bm byte) lor (1 lsl bit))))
    entries;
  Bytes.unsafe_to_string bm

let encode snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_u32 b version;
  add_str b snap.identity.label;
  add_str b snap.identity.fingerprint;
  add_u32 b snap.identity.n;
  add_i64 b snap.identity.base_seed;
  add_u32 b snap.identity.max_attempts;
  Buffer.add_string b (bitmap_of_entries ~n:snap.identity.n snap.entries);
  add_u32 b (Array.length snap.moments);
  Array.iter
    (fun m ->
      add_u32 b m.m_count;
      add_f64 b m.m_mean;
      add_f64 b m.m_m2;
      add_f64 b m.m_lo;
      add_f64 b m.m_hi)
    snap.moments;
  add_u32 b (Array.length snap.entries);
  Array.iter
    (fun e ->
      add_u32 b e.index;
      add_u32 b e.attempts;
      add_str b e.payload)
    snap.entries;
  let crc = Vstat_util.Crc32.digest (Buffer.contents b) in
  add_u32 b crc;
  Buffer.contents b

(* --- decoding ---------------------------------------------------------- *)

exception Short of string

type cursor = { src : string; limit : int; mutable pos : int }

let need cur k what =
  if cur.pos + k > cur.limit then
    raise (Short (Printf.sprintf "truncated while reading %s" what))

let get_u32 cur what =
  need cur 4 what;
  let v = Int32.to_int (String.get_int32_le cur.src cur.pos) land 0xFFFFFFFF in
  cur.pos <- cur.pos + 4;
  v

let get_i64 cur what =
  need cur 8 what;
  let v = String.get_int64_le cur.src cur.pos in
  cur.pos <- cur.pos + 8;
  v

let get_f64 cur what = Int64.float_of_bits (get_i64 cur what)

let get_raw cur k what =
  need cur k what;
  let s = String.sub cur.src cur.pos k in
  cur.pos <- cur.pos + k;
  s

let get_str cur what = get_raw cur (get_u32 cur (what ^ " length")) what

let decode ?(path = in_memory) s =
  let len = String.length s in
  let header = String.length magic + 4 in
  if len < header + 4 then
    Error (Corrupt { path; detail = "file too short for header" })
  else if String.sub s 0 (String.length magic) <> magic then
    Error (Bad_magic { path })
  else begin
    let found =
      Int32.to_int (String.get_int32_le s (String.length magic))
      land 0xFFFFFFFF
    in
    if found <> version then
      Error (Version_skew { path; found; expected = version })
    else begin
      let stored = Int32.to_int (String.get_int32_le s (len - 4)) land 0xFFFFFFFF in
      let computed = Vstat_util.Crc32.digest_sub s ~pos:0 ~len:(len - 4) in
      if stored <> computed then
        Error
          (Corrupt
             { path;
               detail =
                 Printf.sprintf "CRC mismatch (stored %08x, computed %08x)"
                   stored computed })
      else begin
        let cur = { src = s; limit = len - 4; pos = header } in
        match
          let label = get_str cur "label" in
          let fingerprint = get_str cur "fingerprint" in
          let n = get_u32 cur "n" in
          let base_seed = get_i64 cur "base_seed" in
          let max_attempts = get_u32 cur "max_attempts" in
          let bitmap = get_raw cur ((n + 7) / 8) "completion bitmap" in
          let n_moments = get_u32 cur "moments count" in
          let moments =
            Array.init n_moments (fun _ ->
                let m_count = get_u32 cur "moment count" in
                let m_mean = get_f64 cur "moment mean" in
                let m_m2 = get_f64 cur "moment m2" in
                let m_lo = get_f64 cur "moment lo" in
                let m_hi = get_f64 cur "moment hi" in
                { m_count; m_mean; m_m2; m_lo; m_hi })
          in
          let n_entries = get_u32 cur "entry count" in
          let entries =
            Array.init n_entries (fun _ ->
                let index = get_u32 cur "entry index" in
                let attempts = get_u32 cur "entry attempts" in
                let payload = get_str cur "entry payload" in
                { index; attempts; payload })
          in
          if cur.pos <> cur.limit then
            raise (Short "trailing bytes after entry list");
          (* Cross-checks: entries strictly increasing, inside [0,n), and
             in exact agreement with the completion bitmap. *)
          Array.iteri
            (fun k e ->
              if e.index < 0 || e.index >= n then
                raise (Short (Printf.sprintf "entry index %d outside [0,%d)"
                                e.index n));
              if k > 0 && entries.(k - 1).index >= e.index then
                raise (Short "entry indices not strictly increasing"))
            entries;
          let popcount = ref 0 in
          String.iter
            (fun c ->
              let byte = Char.code c in
              for bit = 0 to 7 do
                if byte land (1 lsl bit) <> 0 then incr popcount
              done)
            bitmap;
          if !popcount <> n_entries then
            raise
              (Short
                 (Printf.sprintf
                    "bitmap population %d disagrees with %d entries"
                    !popcount n_entries));
          Array.iter
            (fun e ->
              if
                Char.code bitmap.[e.index lsr 3] land (1 lsl (e.index land 7))
                = 0
              then
                raise
                  (Short
                     (Printf.sprintf "entry %d not marked in bitmap" e.index)))
            entries;
          {
            identity = { label; fingerprint; n; base_seed; max_attempts };
            entries;
            moments;
          }
        with
        | snap -> Ok snap
        | exception Short detail -> Error (Corrupt { path; detail })
      end
    end
  end

(* --- IO ---------------------------------------------------------------- *)

let write ~path snap = Vstat_util.Atomic_io.write_file ~path (encode snap)

let read ~path =
  match Vstat_util.Atomic_io.read_file ~path with
  | Error detail -> Error (Io { path; detail })
  | Ok s -> decode ~path s

let check_identity ?(path = in_memory) ~expected found =
  let fail field expected found =
    Error (Mismatch { path; field; expected; found })
  in
  if not (String.equal expected.label found.label) then
    fail "label" expected.label found.label
  else if not (String.equal expected.fingerprint found.fingerprint) then
    fail "fingerprint" expected.fingerprint found.fingerprint
  else if expected.n <> found.n then
    fail "sample count" (string_of_int expected.n) (string_of_int found.n)
  else if not (Int64.equal expected.base_seed found.base_seed) then
    fail "RNG base seed"
      (Int64.to_string expected.base_seed)
      (Int64.to_string found.base_seed)
  else if expected.max_attempts <> found.max_attempts then
    fail "retry ladder depth"
      (string_of_int expected.max_attempts)
      (string_of_int found.max_attempts)
  else Ok ()
