(** Crash-safe checkpoint/resume for Monte Carlo runs.

    This module wraps {!Runtime.map_subset_attempt_samples} with a durable
    run journal ({!Journal}): completed sample values are recorded as they
    land, a snapshot is atomically flushed to disk every [every] samples
    and at run end, and a later invocation with [resume:true] reloads the
    snapshot, verifies the run identity (label, fingerprint+codec, sample
    count, RNG base seed, retry depth) and replays {e only} the incomplete
    indices on their original substreams.  Because every sample is a pure
    function of its index and substream, an interrupted-and-resumed run is
    bit-identical to an uninterrupted one, at any [jobs] count — and
    resuming under a different worker count is equally safe.

    Graceful degradation: a deadline watchdog ({!Deadline.watchdog}) or a
    caught signal drains the pool at the next sample boundary, flushes a
    final snapshot, and returns a partial {!outcome} whose [cause] says
    why.  Failed samples are never persisted; they replay (and re-fail
    identically) on resume, so the failure census stays honest. *)

(** How to persist one sample value.  [encode]/[decode] must round-trip
    bit-exactly; [observables] projects the value onto the float vector
    summarized in the JSON manifest (streaming moments per component). *)
type 'a codec = {
  codec_name : string;  (** part of the run identity; decode refuses others *)
  encode : 'a -> string;
  decode : string -> 'a;  (** may raise [Failure] on malformed payloads *)
  observables : 'a -> float array;
}

val float_codec : float codec
val float_array_codec : float array codec
val float_list_codec : float list codec
val float_pair_codec : (float * float) codec
(** Two floats per sample — the importance-sampling journal entry
    (metric, log likelihood-ratio weight), so a resumed rare-event run
    restores both the observable and its reweighting factor bit-exactly. *)

val float_triple_codec : (float * float * float) codec

val opaque_codec : string -> 'a codec
(** A non-persistable codec: use it to run {!run} for its deadline/signal
    machinery only (no [settings]).  Its [encode]/[decode] raise
    [Invalid_argument] — passing it together with [settings] is a
    programming error. *)

type settings = {
  dir : string;    (** snapshot directory (created on first flush) *)
  every : int;     (** flush after this many new samples; 0 = only at end *)
  resume : bool;   (** load and verify an existing snapshot first *)
}

val settings : ?every:int -> ?resume:bool -> string -> settings
(** [settings dir] with [every] defaulting to [100] and [resume] to
    [false].  @raise Invalid_argument when [every < 0]. *)

val snapshot_path : settings -> string -> string
(** [snapshot_path s label] — [<dir>/<sanitized label>.ckpt]. *)

val manifest_path : settings -> string -> string
(** [manifest_path s label] — [<dir>/<sanitized label>.json]. *)

type cause =
  | Finished          (** every sample evaluated *)
  | Deadline_reached  (** the [deadline] watchdog fired *)
  | Signalled of int
      (** one of [signals] arrived (OCaml's encoding, e.g. [Sys.sigterm]) *)

val os_signal_number : int -> int
(** Map OCaml's negative portable signal encodings ([Sys.sigterm] = -11)
    to the POSIX numbers shells expect (15), for [exit (128 + signal)]
    and human-readable reports.  Non-negative inputs pass through;
    unrecognized encodings map to 0. *)

type 'a outcome = {
  label : string;
  n : int;
  cells : ('a, Runtime.failure) result option array;
      (** index-stable; [None] = not evaluated (stopped early) *)
  attempts : int array;  (** per sample; 0 = not evaluated *)
  stats : Runtime.stats; (** this invocation's pool statistics *)
  cause : cause;
  restored : int;   (** samples prefilled from the snapshot *)
  completed : int;  (** evaluated samples overall (restored + this run) *)
  snapshot : string option;  (** snapshot path, when checkpointing is on *)
  manifest : string option;  (** JSON manifest path, likewise *)
}

exception
  Interrupted of {
    label : string;
    signal : int;
    completed : int;
    n : int;
    snapshot : string option;
  }
(** Raised by higher layers (not by {!run}) to unwind to the CLI after a
    signal-triggered partial run; registered with [Printexc]. *)

val is_complete : 'a outcome -> bool
val values : 'a outcome -> 'a array
(** Successful samples in index order. *)

val failures : 'a outcome -> Runtime.failure list

val completed_run : 'a outcome -> 'a Runtime.run
(** The evaluated cells compacted into a plain run ([stats.n] = evaluated
    count), so budget checks and downstream statistics treat a partial
    outcome exactly like a smaller run. *)

val run :
  ?jobs:int ->
  ?on_progress:(completed:int -> n:int -> unit) ->
  ?retry:Runtime.retry_policy ->
  ?deadline:(unit -> bool) ->
  ?settings:settings ->
  ?signals:int list ->
  ?fingerprint:string ->
  codec:'a codec ->
  label:string ->
  rng:Vstat_util.Rng.t ->
  n:int ->
  f:(attempt:int -> index:int -> Vstat_util.Rng.t -> 'a) ->
  unit ->
  'a outcome
(** Drop-in checkpointed analogue of {!Runtime.map_rng_attempt_samples}:
    derives the base seed from [rng] with the same single draw, so the
    same starting RNG state produces bit-identical values with or without
    checkpointing.  [deadline] is polled at sample boundaries (build one
    with {!Deadline.watchdog}); [signals] are trapped for the duration of
    the run (handlers restored on exit) and set a flag the pool polls —
    no work happens in the handler itself.  Without [settings] nothing is
    persisted and only the deadline/signal machinery is active.

    @raise Journal.Rejected when [settings.resume] finds a snapshot that
    is corrupt, version-skewed, or belongs to a different run.
    @raise Invalid_argument when [n < 0]. *)
