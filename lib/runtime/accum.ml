type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; lo = Float.infinity; hi = Float.neg_infinity }

let[@vstat.hot] add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let[@vstat.hot] merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let na = Float.of_int a.n and nb = Float.of_int b.n in
    let delta = b.mean -. a.mean in
    {
      n;
      mean = a.mean +. (delta *. nb /. Float.of_int n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. Float.of_int n);
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
    }
  end

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean
let variance t = if t.n < 2 then Float.nan else t.m2 /. Float.of_int (t.n - 1)
let std t = sqrt (variance t)
let min t = t.lo
let max t = t.hi

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    bins : int array;
    mutable under : int;
    mutable over : int;
  }

  let create ~lo ~hi ~bins =
    if bins < 1 then invalid_arg "Accum.Histogram.create: bins >= 1";
    if not (lo < hi) then invalid_arg "Accum.Histogram.create: lo < hi";
    { lo; hi; bins = Array.make bins 0; under = 0; over = 0 }

  let[@vstat.hot] add h x =
    if x < h.lo then h.under <- h.under + 1
    else if x >= h.hi then h.over <- h.over + 1
    else begin
      let k = Array.length h.bins in
      let i = Float.to_int (Float.of_int k *. ((x -. h.lo) /. (h.hi -. h.lo))) in
      let i = Int.min i (k - 1) in
      h.bins.(i) <- h.bins.(i) + 1
    end

  let merge a b =
    if (not (Float.equal a.lo b.lo))
       || (not (Float.equal a.hi b.hi))
       || Array.length a.bins <> Array.length b.bins
    then invalid_arg "Accum.Histogram.merge: bin geometry mismatch";
    {
      lo = a.lo;
      hi = a.hi;
      bins = Array.init (Array.length a.bins) (fun i -> a.bins.(i) + b.bins.(i));
      under = a.under + b.under;
      over = a.over + b.over;
    }

  let counts h = Array.copy h.bins
  let underflow h = h.under
  let overflow h = h.over
  let total h = h.under + h.over + Array.fold_left ( + ) 0 h.bins
end

(* Checkpoint support: the full internal state round-trips through five
   numbers, so snapshots can persist and restore exact accumulators. *)
let dump t = (t.n, t.mean, t.m2, t.lo, t.hi)
let restore (n, mean, m2, lo, hi) = { n; mean; m2; lo; hi }
