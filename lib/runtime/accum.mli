(** Mergeable streaming accumulators for parallel Monte Carlo.

    Each worker folds its samples into a private accumulator; the scheduler
    merges the per-worker states when the pool drains.  Merging is exact for
    counts/extrema and numerically stable for mean/variance (Chan et al.'s
    pairwise Welford update), so a merged accumulator agrees with a serial
    fold over the same samples to floating-point roundoff. *)

type t
(** Running count, mean, M2 (sum of squared deviations) and extrema. *)

val create : unit -> t
(** Empty accumulator. *)

val add : t -> float -> unit
(** Fold one sample in (Welford update). *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to folding [a]'s and
    [b]'s samples into one stream; [a] and [b] are not modified. *)

val of_array : float array -> t

val count : t -> int
val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased (n-1) sample variance; [nan] when [count < 2]. *)

val std : t -> float
val min : t -> float
val max : t -> float

(** Fixed-range histograms with the same merge contract. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> bins:int -> h
  (** [bins] equal-width bins on [lo, hi); samples outside the range land in
      underflow/overflow counters.  [bins >= 1], [lo < hi]. *)

  val add : h -> float -> unit
  val merge : h -> h -> h
  (** Bin geometry of both operands must match. *)

  val counts : h -> int array
  val underflow : h -> int
  val overflow : h -> int
  val total : h -> int
end

val dump : t -> int * float * float * float * float
(** Full internal state [(count, mean, m2, lo, hi)] — what checkpoint
    snapshots persist.  [restore (dump t)] is state-identical to [t]. *)

val restore : int * float * float * float * float -> t
