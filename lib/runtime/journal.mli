(** Durable, self-validating run-journal snapshots (the on-disk half of
    {!Checkpoint}).

    A snapshot records a Monte Carlo run's identity (label, caller
    fingerprint, sample count, RNG base seed, retry-ladder depth), a
    per-sample completion bitmap, per-observable streaming moments, and
    one encoded payload per completed sample.  The binary blob carries a
    magic string, a format version and a CRC-32 footer; writes go through
    {!Vstat_util.Atomic_io} (write-temp → fsync → atomic rename), so a
    reader — including a post-crash resume — observes either the previous
    complete snapshot or the new one, never a torn file.

    Decoding is paranoid by design: bad magic, version skew, CRC
    mismatch, truncation, out-of-range fields and bitmap/entry
    disagreement each yield a typed {!error}.  A snapshot is never
    silently merged into a mismatched run — {!check_identity} compares
    every identity field and names the offending one. *)

type identity = {
  label : string;       (** run label, also the snapshot's file stem *)
  fingerprint : string;
      (** caller-supplied run configuration digest (tech label, solver
          option ladder, injection spec, codec name, ...) *)
  n : int;              (** total samples in the run *)
  base_seed : int64;    (** substream family seed derived from the run RNG *)
  max_attempts : int;   (** retry-ladder depth the samples ran under *)
}

type entry = {
  index : int;     (** sample index *)
  attempts : int;  (** attempts the sample consumed (1 = first try) *)
  payload : string;    (** codec-encoded sample value *)
}

type moments = {
  m_count : int;
  m_mean : float;
  m_m2 : float;    (** sum of squared deviations (Welford) *)
  m_lo : float;
  m_hi : float;
}

type snapshot = {
  identity : identity;
  entries : entry array;   (** completed samples, sorted by index *)
  moments : moments array; (** one per observable, index order *)
}

(** Every error payload names the snapshot file it describes ([path]), so
    layers that manage many journals — the checkpoint driver, the
    [Vstat_service] result cache — can report {e which} snapshot is bad.
    Errors produced away from the filesystem carry {!in_memory}. *)
type error =
  | Io of { path : string; detail : string }
  | Bad_magic of { path : string }
  | Version_skew of { path : string; found : int; expected : int }
  | Corrupt of { path : string; detail : string }
      (** CRC mismatch, truncation, inconsistent fields *)
  | Mismatch of { path : string; field : string; expected : string; found : string }
      (** identity disagreement found by {!check_identity} *)

exception Rejected of error
(** Raised by {!Checkpoint} when a resume is refused; registered with
    [Printexc] for readable reports. *)

val in_memory : string
(** The [path] recorded when a blob is decoded from memory rather than a
    file (["<memory>"]). *)

val error_path : error -> string
(** The snapshot path carried by any {!error}. *)

val error_to_string : error -> string

val version : int
(** Current snapshot format version. *)

val encode : snapshot -> string
(** Serialize (including the CRC footer).  @raise Invalid_argument if an
    entry index falls outside [0, n). *)

val decode : ?path:string -> string -> (snapshot, error) result
(** [path] (default {!in_memory}) is recorded in any error payload. *)

val write : path:string -> snapshot -> unit
(** Atomic, durable replacement of [path] ({!Vstat_util.Atomic_io}). *)

val read : path:string -> (snapshot, error) result

val check_identity :
  ?path:string -> expected:identity -> identity -> (unit, error) result
(** [Error (Mismatch _)] naming the first differing field, if any; [path]
    (default {!in_memory}) names the snapshot the [found] identity was
    read from. *)
