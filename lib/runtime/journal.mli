(** Durable, self-validating run-journal snapshots (the on-disk half of
    {!Checkpoint}).

    A snapshot records a Monte Carlo run's identity (label, caller
    fingerprint, sample count, RNG base seed, retry-ladder depth), a
    per-sample completion bitmap, per-observable streaming moments, and
    one encoded payload per completed sample.  The binary blob carries a
    magic string, a format version and a CRC-32 footer; writes go through
    {!Vstat_util.Atomic_io} (write-temp → fsync → atomic rename), so a
    reader — including a post-crash resume — observes either the previous
    complete snapshot or the new one, never a torn file.

    Decoding is paranoid by design: bad magic, version skew, CRC
    mismatch, truncation, out-of-range fields and bitmap/entry
    disagreement each yield a typed {!error}.  A snapshot is never
    silently merged into a mismatched run — {!check_identity} compares
    every identity field and names the offending one. *)

type identity = {
  label : string;       (** run label, also the snapshot's file stem *)
  fingerprint : string;
      (** caller-supplied run configuration digest (tech label, solver
          option ladder, injection spec, codec name, ...) *)
  n : int;              (** total samples in the run *)
  base_seed : int64;    (** substream family seed derived from the run RNG *)
  max_attempts : int;   (** retry-ladder depth the samples ran under *)
}

type entry = {
  index : int;     (** sample index *)
  attempts : int;  (** attempts the sample consumed (1 = first try) *)
  payload : string;    (** codec-encoded sample value *)
}

type moments = {
  m_count : int;
  m_mean : float;
  m_m2 : float;    (** sum of squared deviations (Welford) *)
  m_lo : float;
  m_hi : float;
}

type snapshot = {
  identity : identity;
  entries : entry array;   (** completed samples, sorted by index *)
  moments : moments array; (** one per observable, index order *)
}

type error =
  | Io of string
  | Bad_magic
  | Version_skew of { found : int; expected : int }
  | Corrupt of string  (** CRC mismatch, truncation, inconsistent fields *)
  | Mismatch of { field : string; expected : string; found : string }
      (** identity disagreement found by {!check_identity} *)

exception Rejected of error
(** Raised by {!Checkpoint} when a resume is refused; registered with
    [Printexc] for readable reports. *)

val error_to_string : error -> string

val version : int
(** Current snapshot format version. *)

val encode : snapshot -> string
(** Serialize (including the CRC footer).  @raise Invalid_argument if an
    entry index falls outside [0, n). *)

val decode : string -> (snapshot, error) result

val write : path:string -> snapshot -> unit
(** Atomic, durable replacement of [path] ({!Vstat_util.Atomic_io}). *)

val read : path:string -> (snapshot, error) result

val check_identity : expected:identity -> identity -> (unit, error) result
(** [Error (Mismatch _)] naming the first differing field, if any. *)
