(* Monotonic wall-clock deadline watchdog.

   The determinism lint bans wall-clock reads in sample code: a sample's
   value must be a pure function of (index, substream).  A *deadline* is
   different — it decides only how many samples run, never what any sample
   computes, and the checkpoint/resume machinery guarantees the surviving
   prefix is bit-identical to the same samples of an uninterrupted run.
   This module is therefore the single sanctioned clock read: the
   bechamel CLOCK_MONOTONIC stub (immune to NTP steps and
   settimeofday, unlike Unix.gettimeofday), suppressed at exactly one
   binding below. *)

(* Sanctioned wall-clock read: CLOCK_MONOTONIC nanoseconds for deadline
   enforcement only — never consulted by sample code (see module
   comment and DESIGN.md "Checkpointing & deadlines"). *)
let[@vstat.allow "determinism-wallclock"] now_ns () = Monotonic_clock.now ()

let watchdog ~seconds =
  if not (seconds > 0.0) then
    invalid_arg
      (Printf.sprintf "Deadline.watchdog: seconds must be > 0 (got %g)"
         seconds);
  let budget_ns = Int64.of_float (seconds *. 1e9) in
  let start = now_ns () in
  fun () -> Int64.compare (Int64.sub (now_ns ()) start) budget_ns >= 0

let never () = false

let combine a b = fun () -> a () || b ()
