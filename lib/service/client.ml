(* One-shot protocol client with deterministic, jittered connect retry. *)

module P = Protocol
module Deadline = Vstat_runtime.Deadline

let default_attempts = 8
let backoff_base_s = 0.05

(* Jitter keyed by (seed, attempt) through Rng.substream: reproducible
   under the determinism lint, yet decorrelated across attempts — and
   across clients, when each passes its own seed. *)
let backoff_s ~seed ~attempt =
  let rng = Vstat_util.Rng.substream ~seed ~index:attempt in
  backoff_base_s
  *. Float.of_int (1 lsl Int.min attempt 6)
  *. (0.5 +. Vstat_util.Rng.float rng)

let connect ?(attempts = default_attempts) ?(seed = 0x7a11) ~socket_path () =
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> Ok fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt + 1 >= attempts then
        Error
          (Printf.sprintf "cannot connect to %s after %d attempts: %s"
             socket_path attempts (Unix.error_message e))
      else begin
        Unix.sleepf (backoff_s ~seed ~attempt);
        go (attempt + 1)
      end
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket_path
           (Unix.error_message e))
  in
  go 0

let request ?attempts ?seed ~socket_path req =
  match connect ?attempts ?seed ~socket_path () with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
        match P.write_frame fd (P.encode_request req) with
        | Error e -> Error (P.error_to_string e)
        | Ok () -> (
          match P.read_frame fd with
          | Error e -> Error (P.error_to_string e)
          | Ok payload -> (
            match P.decode_response payload with
            | Error e -> Error (P.error_to_string e)
            | Ok resp -> Ok resp)))

let submit ?attempts ?seed ?(client = "default") ~socket_path ~spec
    ~deadline_s () =
  request ?attempts ?seed ~socket_path (P.Submit { spec; deadline_s; client })

type await_error =
  | Await_quarantined of { attempts : int; detail : string }
  | Await_failed of string

let await_error_to_string = function
  | Await_quarantined { attempts; detail } ->
    Printf.sprintf "quarantined after %d attempt(s): %s" attempts detail
  | Await_failed msg -> msg

let await ?attempts ?seed ?(poll_s = 0.1) ?(timeout_s = 600.0) ~socket_path
    ~id () =
  let t0 = Deadline.now_ns () in
  let elapsed () = Int64.to_float (Int64.sub (Deadline.now_ns ()) t0) *. 1e-9 in
  let fail fmt = Printf.ksprintf (fun m -> Error (Await_failed m)) fmt in
  let rec poll () =
    if elapsed () > timeout_s then
      fail "job %s: no result after %.0fs" id timeout_s
    else begin
      match request ?attempts ?seed ~socket_path (P.Status { id }) with
      | Error e -> Error (Await_failed e)
      | Ok (P.Job_status { state = P.Done; _ }) -> (
        match request ?attempts ?seed ~socket_path (P.Result { id }) with
        | Error e -> Error (Await_failed e)
        | Ok (P.Job_result summary) -> Ok summary
        | Ok other ->
          fail "job %s: unexpected result response %s" id
            (match other with
            | P.Unknown_id _ -> "unknown-id"
            | P.Shutting_down -> "shutting-down"
            | _ -> "wrong-kind"))
      | Ok (P.Job_status { state = P.Quarantined { attempts = a; detail }; _ })
        ->
        (* Terminal: the daemon will never run this job again.  Failing
           fast here (rather than polling out the timeout) is the whole
           point of the typed quarantine status. *)
        Error (Await_quarantined { attempts = a; detail })
      | Ok (P.Job_status _) ->
        Unix.sleepf poll_s;
        poll ()
      | Ok (P.Unknown_id _) -> fail "job %s: unknown to the daemon" id
      | Ok P.Shutting_down -> fail "daemon is shutting down"
      | Ok _ -> fail "job %s: unexpected status response" id
    end
  in
  poll ()
