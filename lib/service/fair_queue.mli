(** Round-robin fair queue across client identities.

    Jobs are tagged with an opaque client id at [push] time; [pop] serves
    clients round-robin in first-arrival rotation order, one job per turn,
    so after any [t] pops the per-client service counts differ by at most
    one among clients that still hold jobs.  A client submitting a burst
    of work delays only itself.  FIFO order is preserved within a client.

    Purely deterministic in the operation sequence: the structure never
    iterates a hash table in bucket order, reads a clock, or draws
    randomness — the qcheck skew property in [test/test_service.ml] pins
    the fairness bound. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> client:string -> 'a -> unit
(** Append to [client]'s line (registering the client at the back of the
    rotation if it had no pending jobs). *)

val push_front : 'a t -> client:string -> 'a -> unit
(** Prepend to [client]'s line: the requeue path for a crashed or hung
    worker's job — it runs next {e for that client} without jumping other
    clients' turns. *)

val pop : 'a t -> 'a option
(** Next job in round-robin order, or [None] when empty. *)

val position : 'a t -> ('a -> bool) -> int
(** Dequeue-order position (0 = next) of the first element satisfying the
    predicate under round-robin service, or [-1] if absent.  O(length). *)

val iter : 'a t -> (client:string -> 'a -> unit) -> unit
(** Deterministic iteration: clients in rotation order, jobs in arrival
    order within each client. *)

val clients : 'a t -> int
(** Number of distinct clients with pending jobs. *)
