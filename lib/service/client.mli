(** Client side of the [vstatd] protocol.

    Connections are one-shot (one request frame, one response frame), so
    the only stateful part is connect retry: a daemon that is still
    building its pipeline, or briefly gone during a restart, is retried
    with jittered exponential backoff.  The jitter comes from
    {!Vstat_util.Rng.substream} keyed by the attempt number — fully
    deterministic for a given [seed], per the repository's determinism
    contract (no OS randomness, no wall-clock reads). *)

val default_attempts : int

val request :
  ?attempts:int ->
  ?seed:int ->
  socket_path:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** One round-trip.  Connect failures ([ENOENT], [ECONNREFUSED]) are
    retried up to [attempts] times (default {!default_attempts}) with
    backoff [50ms * 2^k * (0.5 + U[0,1))]; protocol and socket errors
    after a successful connect are returned as [Error] immediately. *)

val await :
  ?attempts:int ->
  ?seed:int ->
  ?poll_s:float ->
  ?timeout_s:float ->
  socket_path:string ->
  id:string ->
  unit ->
  (Protocol.summary, string) result
(** Poll [Status] until the job reports [Done] (default every 0.1 s, up
    to 600 s), then fetch and return its result.  [Error] on unknown id,
    timeout, or transport failure. *)

val submit :
  ?attempts:int ->
  ?seed:int ->
  socket_path:string ->
  spec:Protocol.spec ->
  deadline_s:float ->
  unit ->
  (Protocol.response, string) result
(** [request] on a [Submit] message. *)
