(** Client side of the [vstatd] protocol.

    Connections are one-shot (one request frame, one response frame), so
    the only stateful part is connect retry: a daemon that is still
    building its pipeline, or briefly gone during a restart, is retried
    with jittered exponential backoff.  The jitter comes from
    {!Vstat_util.Rng.substream} keyed by the attempt number — fully
    deterministic for a given [seed], per the repository's determinism
    contract (no OS randomness, no wall-clock reads). *)

val default_attempts : int

val request :
  ?attempts:int ->
  ?seed:int ->
  socket_path:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** One round-trip.  Connect failures ([ENOENT], [ECONNREFUSED]) are
    retried up to [attempts] times (default {!default_attempts}) with
    backoff [50ms * 2^k * (0.5 + U[0,1))]; protocol and socket errors
    after a successful connect are returned as [Error] immediately. *)

type await_error =
  | Await_quarantined of { attempts : int; detail : string }
      (** the daemon retired the job after it crashed or hung its worker
          [attempts] times; it will never finish *)
  | Await_failed of string  (** timeout, transport or protocol failure *)

val await_error_to_string : await_error -> string

val await :
  ?attempts:int ->
  ?seed:int ->
  ?poll_s:float ->
  ?timeout_s:float ->
  socket_path:string ->
  id:string ->
  unit ->
  (Protocol.summary, await_error) result
(** Poll [Status] until the job reaches a terminal state (default every
    0.1 s, up to 600 s).  [Done] fetches and returns the result;
    [Quarantined] fails fast with {!Await_quarantined} — a quarantined
    job will never finish, so polling on would just burn the timeout.
    [Await_failed] on unknown id, timeout, or transport failure. *)

val submit :
  ?attempts:int ->
  ?seed:int ->
  ?client:string ->
  socket_path:string ->
  spec:Protocol.spec ->
  deadline_s:float ->
  unit ->
  (Protocol.response, string) result
(** [request] on a [Submit] message.  [client] (default ["default"]) is
    the fairness identity the daemon round-robins across; it does not
    affect the job's cache identity. *)
