(** Wire protocol of the [vstatd] variation-analysis service.

    Frames are length-prefixed: a 4-byte little-endian payload length
    followed by the payload, capped at {!max_frame} bytes so a hostile or
    confused peer cannot make the daemon allocate unboundedly.  Payloads
    are versioned binary messages in the same little-endian style as
    {!Vstat_runtime.Journal}.

    The codec never raises on malformed input: every decoder returns a
    typed {!error} for truncated frames, oversized frames, unknown tags,
    trailing bytes and out-of-range fields.  Encoding a value produced by
    this module always round-trips ([decode (encode m) = Ok m]). *)

(** {1 Job specifications} *)

type job_kind =
  | Inverter_tpd of { fanout : int }
      (** FO-[fanout] inverter propagation delay, statistical VS tech *)
  | Sram_snm of { read : bool }
      (** 6T SRAM static noise margin, READ ([true]) or HOLD mode *)
  | Idsat
      (** NMOS on-current draw — the cheap load-generator job *)

type spec = {
  kind : job_kind;
  n : int;       (** Monte Carlo samples, >= 1 *)
  seed : int;    (** RNG seed; part of the job identity *)
  vdd : float;   (** supply voltage, V *)
  retry : int;   (** retry-ladder depth per sample, >= 1 *)
}

val spec_canonical : pipeline:string -> spec -> string
(** Canonical run-identity string: every field that changes sample values
    (job parameters, seed, and the daemon's [pipeline] signature) rendered
    with [%.17g] floats.  This is both the {!Vstat_runtime.Checkpoint}
    fingerprint and the input to {!job_id} — two requests with equal
    canonical strings are the same job and may share cached results.
    Per-request deadlines are deliberately excluded: a deadline changes
    how many samples complete, never what any sample computes. *)

val spec_of_canonical : string -> (spec, string) result
(** Parse a {!spec_canonical} string back (the daemon recovers interrupted
    jobs from journal fingerprints at startup).  The [pipeline] field is
    validated by the caller against its own pipeline signature. *)

val canonical_pipeline : string -> string option
(** The [pipeline] signature recorded in a canonical string, if any. *)

val job_id : string -> string
(** 16-hex-digit content address of a canonical spec string (two CRC-32
    lanes).  Collisions are caught downstream by the journal's
    full-fingerprint identity check. *)

(** {1 Messages} *)

type request =
  | Submit of { spec : spec; deadline_s : float; client : string }
      (** [deadline_s <= 0.] means no deadline.  [client] is an opaque
          fairness identity: the daemon serves queued jobs round-robin
          across client ids, so one flooding client delays only itself.
          It is not part of the job identity — two clients submitting the
          same spec share one cached result. *)
  | Status of { id : string }
  | Result of { id : string }
  | Health
  | Shutdown  (** orderly daemon shutdown (tests, CI) *)

type reject_reason =
  | Queue_full of { queued : int; queue_max : int }
  | Over_deadline of { estimated_wait_s : float; deadline_s : float }
  | Bad_request of { detail : string }

type job_state =
  | Queued of { position : int }  (** 0 = next to run *)
  | Running
  | Done
  | Quarantined of { attempts : int; detail : string }
      (** terminal: the job took down (or hung) a worker [attempts] times
          and will not be retried again; [detail] records the last
          failure.  Clients must treat this as a final answer, not poll. *)

type summary = {
  id : string;
  n : int;             (** samples requested *)
  completed : int;     (** samples evaluated (= [n] unless degraded) *)
  failed : int;        (** samples dead after the retry ladder *)
  mean : float;
  std : float;
  ci_lo : float;       (** 95 % CI on the mean — honestly wider when partial *)
  ci_hi : float;
  partial : bool;      (** degraded: deadline or shutdown stopped the run *)
  cause : string;      (** ["finished"] | ["deadline"] | ["shutdown"] *)
  cached : bool;       (** served from the journal result cache *)
  wall_s : float;      (** compute wall time (0 for pure cache hits) *)
  retried : int;       (** samples that needed more than one attempt *)
  values : float array;(** completed sample values, index order — the
                           bit-identity contract is checked on these *)
}

type worker_health = {
  wid : int;             (** pool slot index, stable across replacements *)
  generation : int;      (** bumped each time the slot's domain is replaced *)
  busy : string option;  (** id of the job the worker is running, if any *)
  heartbeat_age_s : float;  (** seconds since the worker last heartbeat *)
  jobs_done : int;       (** jobs this slot has completed (all generations) *)
}

type health = {
  uptime_s : float;
  queued : int;
  running : int;
  finished : int;
  rejected : int;
  cache_hits : int;
  served : int;
  requeued : int;        (** victim jobs requeued after a crash or hang *)
  quarantined : int;     (** jobs retired after exhausting the retry budget *)
  worker_crashes : int;  (** worker domains that died with an exception *)
  worker_hangs : int;    (** workers replaced by the heartbeat watchdog *)
  state_bytes : int;     (** journal/result state-dir footprint, bytes *)
  evicted : int;         (** journals evicted by the LRU byte budget *)
  workers : worker_health list;  (** one entry per pool slot *)
}

type response =
  | Accepted of { id : string; cached : bool }
  | Rejected of { reason : reject_reason }
  | Job_status of { id : string; state : job_state }
  | Job_result of summary
  | Unknown_id of { id : string }
  | Health_report of health
  | Shutting_down

(** {1 Codec} *)

type error =
  | Truncated of { what : string }
      (** payload ended mid-field while reading [what] *)
  | Oversized of { len : int; max : int }
      (** frame length prefix exceeds {!max_frame} *)
  | Bad_version of { found : int; expected : int }
  | Bad_tag of { what : string; tag : int }
  | Trailing of { extra : int }
      (** well-formed message followed by [extra] junk bytes *)
  | Bad_value of { what : string; detail : string }
  | Io of { detail : string }
      (** socket-level failure while reading or writing a frame *)

val error_to_string : error -> string

val version : int
(** Wire protocol version; a mismatch yields [Bad_version]. *)

val canonical_version : int
(** Version of the {!spec_canonical} grammar, deliberately decoupled from
    the wire {!version}: wire changes (new messages, richer health) must
    not re-address cached journals.  Bump only when a change alters what a
    sample computes. *)

val max_frame : int

val encode_request : request -> string
val decode_request : string -> (request, error) result
val encode_response : response -> string
val decode_response : string -> (response, error) result

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> (unit, error) result
(** Length-prefix and send one payload.  [Error Oversized] if the payload
    exceeds {!max_frame}; socket errors come back as [Error (Io _)]. *)

val read_frame : Unix.file_descr -> (string, error) result
(** Read one length-prefixed payload.  Typed errors for EOF mid-frame,
    oversized prefixes and socket failures; never raises. *)
