(* Round-robin fair queue across client identities.

   Invariant: a client id is in [rotation] exactly once iff its per-client
   queue is non-empty.  [pop] serves the rotation head and re-appends it
   while it still has work, so after any t pops the per-client service
   counts differ by at most one among clients that still hold jobs — one
   flooding client cannot starve the others.  Everything is deterministic
   in the arrival order: no hashing order leaks (the Hashtbl is only ever
   probed by key), no clock, no randomness. *)

type 'a t = {
  queues : (string, 'a Queue.t) Hashtbl.t;
  rotation : string Queue.t;
  mutable total : int;
}

let create () =
  { queues = Hashtbl.create 16; rotation = Queue.create (); total = 0 }

let length t = t.total
let is_empty t = t.total = 0

let client_queue t client =
  match Hashtbl.find_opt t.queues client with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues client q;
    q

let enqueue_rotation_if_new t client q =
  (* Empty before this push <=> the client was not in rotation. *)
  if Queue.length q = 0 then Queue.push client t.rotation

let push t ~client v =
  let q = client_queue t client in
  enqueue_rotation_if_new t client q;
  Queue.push v q;
  t.total <- t.total + 1

let push_front t ~client v =
  let q = client_queue t client in
  enqueue_rotation_if_new t client q;
  (* Queue has no push-front; rebuild the (short) per-client queue.  A
     front push is the requeue path — a supervisor putting a victim job
     back at the head of its owner's line — so it is rare and the queue
     is admission-bounded. *)
  let rest = Queue.create () in
  Queue.transfer q rest;
  Queue.push v q;
  Queue.transfer rest q;
  t.total <- t.total + 1

let rec pop t =
  match Queue.take_opt t.rotation with
  | None -> None
  | Some client -> (
    match Hashtbl.find_opt t.queues client with
    | None -> pop t (* stale rotation entry; cannot happen, but total *)
    | Some q -> (
      match Queue.take_opt q with
      | None ->
        Hashtbl.remove t.queues client;
        pop t
      | Some v ->
        t.total <- t.total - 1;
        if Queue.is_empty q then Hashtbl.remove t.queues client
        else Queue.push client t.rotation;
        Some v))

(* Dequeue-order position of the first element satisfying [pred]: simulate
   the round-robin drain over snapshots.  O(total) worst case, bounded by
   the admission queue_max, and only called on the Status path. *)
let position t pred =
  let order = Queue.fold (fun acc c -> c :: acc) [] t.rotation |> List.rev in
  let snapshots =
    List.filter_map
      (fun c ->
        match Hashtbl.find_opt t.queues c with
        | Some q when Queue.length q > 0 ->
          Some (ref (Queue.fold (fun acc v -> v :: acc) [] q |> List.rev))
        | _ -> None)
      order
  in
  let found = ref (-1) and served = ref 0 and progressed = ref true in
  while !found < 0 && !progressed do
    progressed := false;
    List.iter
      (fun cell ->
        if !found < 0 then
          match !cell with
          | [] -> ()
          | v :: rest ->
            progressed := true;
            if pred v then found := !served
            else begin
              cell := rest;
              incr served
            end)
      snapshots
  done;
  !found

let iter t f =
  (* Arrival-order iteration per client, clients in rotation order —
     deterministic, used for queue introspection only. *)
  Queue.iter
    (fun c ->
      match Hashtbl.find_opt t.queues c with
      | Some q -> Queue.iter (fun v -> f ~client:c v) q
      | None -> ())
    t.rotation

let clients t = Queue.length t.rotation
