(** The [vstatd] daemon: a Unix-domain-socket variation-analysis service.

    One process, [workers + 2] domains.  The accept domain speaks the
    one-shot {!Protocol} (connect, one request frame, one response frame,
    close) and performs {e admission control}; a pool of worker domains
    executes queued jobs through {!Vstat_runtime.Checkpoint.run}, so each
    job inherits the whole robustness stack: retry ladder, deadline
    watchdog with graceful partial results, and crash-safe journaling.  A
    supervisor domain watches the pool.

    Robustness contract:

    - {b Bounded admission.}  A submit is answered [Accepted] or typed
      [Rejected] ([Bad_request] for invalid specs, [Over_deadline] when
      the EWMA backlog estimate — divided by the pool width — says the
      request cannot finish inside its own deadline, [Queue_full] past
      [queue_max]).  The queue never grows without bound; overload sheds
      load instead of collapsing.
    - {b Fair queueing.}  Queued jobs are served round-robin across the
      client identities given at submit time ({!Fair_queue}): a client
      flooding the queue delays only itself, and per-client FIFO order is
      preserved.
    - {b Supervision.}  Every worker heartbeats at each sample boundary.
      The supervisor detects crashed workers (the domain exited with an
      exception, observed via [Domain.join]) and hung workers (no
      heartbeat past a watchdog budget derived from the EWMA per-sample
      estimate, floored at [hang_timeout_s]).  Victim jobs are requeued
      at the front of their client's line and resume from their
      checkpoint journal — the recovered summary is bit-identical to an
      uninterrupted run.  A job that keeps destroying workers is retired
      after [poison_retries] rounds with a terminal
      {!Protocol.job_state.Quarantined} status.  Hung domains cannot be
      killed in OCaml; they are retired in place and their stale results
      discarded by an ownership check.
    - {b Deadlines degrade, not fail.}  A deadline-limited job returns a
      partial {!Protocol.summary}: fewer samples, honestly wider
      confidence interval, [cause = "deadline"].
    - {b Crash recovery.}  Every job journals under its content address
      (the canonical spec string is the {!Vstat_runtime.Journal}
      fingerprint; {!Protocol.job_id} is the file stem).  On restart the
      daemon rescans its state directory: complete journals are re-served
      bit-identically as cache hits, partial journals resume from their
      last flush, and corrupt ones are quarantined with a typed error
      naming the file.  Because every sample is a pure function of
      [(spec, index)], a killed-and-restarted daemon returns the same
      bytes an uninterrupted one would.
    - {b Bounded state.}  [state_max_bytes > 0] caps the journal/manifest
      directory: least-recently-finished files are evicted first
      (quarantined [.bad] files before live journals; queued and running
      jobs are never evicted).
    - {b Chaos.}  {!Vstat_device.Fault_inject.Service} faults can be
      armed daemon-wide: stalls and pre-sample aborts exercise the retry
      ladder; worker crashes and heartbeat hangs exercise the supervisor.
      All are value-neutral — an injected daemon still serves
      bit-identical results (or a typed quarantine). *)

type config = {
  socket_path : string;
  state_dir : string;       (** journal cache directory (created if absent) *)
  queue_max : int;          (** admission bound on queued jobs, >= 1 *)
  workers : int;            (** worker-pool width: concurrent jobs, >= 1 *)
  jobs : int;               (** runtime pool width per job; 0 = default *)
  poison_retries : int;
      (** rounds a job may crash/hang its worker before quarantine, >= 1 *)
  hang_timeout_s : float;
      (** watchdog floor: a busy worker silent this long is hung, > 0 *)
  state_max_bytes : int;
      (** LRU byte budget for [state_dir]; 0 = unbounded *)
  pipeline_seed : int;      (** statistical-VS extraction seed *)
  mc_per_geometry : int;    (** extraction MC size (small = fast startup) *)
  inject : Vstat_device.Fault_inject.Service.config option;
      (** service-layer chaos: stalls / aborts / crashes / hangs *)
}

val default_config : config
(** [queue_max = 32], [workers = 1], [jobs = 1], [poison_retries = 3],
    [hang_timeout_s = 30.], unbounded state dir, pipeline seed 42 with 300
    samples per geometry, no injection; socket and state dir under
    ["./vstatd-state"]. *)

val pipeline_signature : config -> string
(** The [pipe=] component of every canonical spec string this daemon
    produces: jobs from daemons with different extraction settings never
    share cache entries. *)

val estimate_wait_s :
  ewma_sample_s:float -> backlog_samples:int -> workers:int -> float
(** The admission wait estimate: smoothed per-sample seconds times the
    backlog (in samples), divided by the worker-pool width — [workers]
    jobs drain concurrently, so the expected wait shrinks accordingly.
    Exposed pure for tests; clamps [workers] to at least 1. *)

type t

val create : ?pipeline:Vstat_core.Pipeline.t -> config -> t
(** Build the statistical pipeline (the expensive part), bind the listen
    socket, recover journals from [state_dir], and start the worker pool
    and supervisor domains.  [pipeline] skips the build for in-process
    harnesses — the caller must pass one whose seed and extraction size
    match the config, since {!pipeline_signature} is baked into every
    cache identity.
    @raise Unix.Unix_error if the socket cannot be bound or
    Invalid_argument on a nonsensical config. *)

val serve : t -> unit
(** Blocking accept loop.  Returns after {!stop} is called (from a signal
    handler or another domain) or a [Shutdown] request arrives, having
    joined the supervisor and every worker (current and retired), closed
    the socket and unlinked the socket path.  Workers drain gracefully:
    an in-flight job stops at the next sample boundary and flushes its
    journal, so nothing is lost. *)

val stop : t -> unit
(** Request shutdown (idempotent, async-signal-safe: sets a flag). *)

val validate : config -> Protocol.spec -> (unit, string) result
(** The admission validity check, exposed for tests and the CLI: sample
    count, retry depth, vdd and fanout ranges. *)
