(** The [vstatd] daemon: a Unix-domain-socket variation-analysis service.

    One process, two domains.  The accept domain speaks the one-shot
    {!Protocol} (connect, one request frame, one response frame, close)
    and performs {e admission control}; a single worker domain executes
    queued jobs through {!Vstat_runtime.Checkpoint.run}, so each job
    inherits the whole robustness stack: retry ladder, deadline watchdog
    with graceful partial results, and crash-safe journaling.

    Robustness contract:

    - {b Bounded admission.}  A submit is answered [Accepted] or typed
      [Rejected] ([Bad_request] for invalid specs, [Over_deadline] when
      the EWMA backlog estimate says the request cannot finish inside its
      own deadline, [Queue_full] past [queue_max]).  The queue never grows
      without bound; overload sheds load instead of collapsing.
    - {b Deadlines degrade, not fail.}  A deadline-limited job returns a
      partial {!Protocol.summary}: fewer samples, honestly wider
      confidence interval, [cause = "deadline"].
    - {b Crash recovery.}  Every job journals under its content address
      (the canonical spec string is the {!Vstat_runtime.Journal}
      fingerprint; {!Protocol.job_id} is the file stem).  On restart the
      daemon rescans its state directory: complete journals are re-served
      bit-identically as cache hits, partial journals resume from their
      last flush, and corrupt ones are quarantined with a typed error
      naming the file.  Because every sample is a pure function of
      [(spec, index)], a killed-and-restarted daemon returns the same
      bytes an uninterrupted one would.
    - {b Chaos.}  {!Vstat_device.Fault_inject.Service} faults (worker
      stalls, pre-sample aborts) can be armed daemon-wide; they perturb
      timing and exercise the retry ladder without changing any value. *)

type config = {
  socket_path : string;
  state_dir : string;       (** journal cache directory (created if absent) *)
  queue_max : int;          (** admission bound on queued jobs, >= 1 *)
  jobs : int;               (** worker-pool width per job; 0 = runtime default *)
  pipeline_seed : int;      (** statistical-VS extraction seed *)
  mc_per_geometry : int;    (** extraction MC size (small = fast startup) *)
  inject : Vstat_device.Fault_inject.Service.config option;
      (** service-layer chaos: stalls / aborts, value-neutral *)
}

val default_config : config
(** [queue_max = 32], [jobs = 1], pipeline seed 42 with 300 samples per
    geometry, no injection; socket and state dir under ["./vstatd-state"]. *)

val pipeline_signature : config -> string
(** The [pipe=] component of every canonical spec string this daemon
    produces: jobs from daemons with different extraction settings never
    share cache entries. *)

type t

val create : ?pipeline:Vstat_core.Pipeline.t -> config -> t
(** Build the statistical pipeline (the expensive part), bind the listen
    socket, recover journals from [state_dir], and start the worker
    domain.  [pipeline] skips the build for in-process harnesses — the
    caller must pass one whose seed and extraction size match the config,
    since {!pipeline_signature} is baked into every cache identity.
    @raise Unix.Unix_error if the socket cannot be bound or
    Invalid_argument on a nonsensical config. *)

val serve : t -> unit
(** Blocking accept loop.  Returns after {!stop} is called (from a signal
    handler or another domain) or a [Shutdown] request arrives, having
    joined the worker, closed the socket and unlinked the socket path.
    The worker drains gracefully: an in-flight job stops at the next
    sample boundary and flushes its journal, so nothing is lost. *)

val stop : t -> unit
(** Request shutdown (idempotent, async-signal-safe: sets a flag). *)

val validate : config -> Protocol.spec -> (unit, string) result
(** The admission validity check, exposed for tests and the CLI: sample
    count, retry depth, vdd and fanout ranges. *)
