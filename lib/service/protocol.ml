(* Wire protocol for vstatd: length-prefixed frames, versioned binary
   payloads, total decoders.

   Same little-endian conventions as {!Vstat_runtime.Journal}.  The
   decoding side is written against hostile input: every read is
   bounds-checked (typed [Truncated]), tags are closed ([Bad_tag]),
   numeric fields are range-checked ([Bad_value]), and a message followed
   by junk is refused ([Trailing]) — a strict prefix or extension of a
   valid payload never decodes.  No decoder raises. *)

type job_kind =
  | Inverter_tpd of { fanout : int }
  | Sram_snm of { read : bool }
  | Idsat

type spec = {
  kind : job_kind;
  n : int;
  seed : int;
  vdd : float;
  retry : int;
}

type request =
  | Submit of { spec : spec; deadline_s : float; client : string }
  | Status of { id : string }
  | Result of { id : string }
  | Health
  | Shutdown

type reject_reason =
  | Queue_full of { queued : int; queue_max : int }
  | Over_deadline of { estimated_wait_s : float; deadline_s : float }
  | Bad_request of { detail : string }

type job_state =
  | Queued of { position : int }
  | Running
  | Done
  | Quarantined of { attempts : int; detail : string }

type summary = {
  id : string;
  n : int;
  completed : int;
  failed : int;
  mean : float;
  std : float;
  ci_lo : float;
  ci_hi : float;
  partial : bool;
  cause : string;
  cached : bool;
  wall_s : float;
  retried : int;
  values : float array;
}

type worker_health = {
  wid : int;             (* pool slot *)
  generation : int;      (* bumped every time the slot's worker is replaced *)
  busy : string option;  (* running job id *)
  heartbeat_age_s : float;
  jobs_done : int;
}

type health = {
  uptime_s : float;
  queued : int;
  running : int;
  finished : int;
  rejected : int;
  cache_hits : int;
  served : int;
  requeued : int;          (* victim jobs put back after a crash/hang *)
  quarantined : int;       (* jobs retired after exhausting retries *)
  worker_crashes : int;
  worker_hangs : int;
  state_bytes : int;       (* journal/result state dir footprint *)
  evicted : int;           (* journals removed by the LRU byte budget *)
  workers : worker_health list;
}

type response =
  | Accepted of { id : string; cached : bool }
  | Rejected of { reason : reject_reason }
  | Job_status of { id : string; state : job_state }
  | Job_result of summary
  | Unknown_id of { id : string }
  | Health_report of health
  | Shutting_down

type error =
  | Truncated of { what : string }
  | Oversized of { len : int; max : int }
  | Bad_version of { found : int; expected : int }
  | Bad_tag of { what : string; tag : int }
  | Trailing of { extra : int }
  | Bad_value of { what : string; detail : string }
  | Io of { detail : string }

let error_to_string = function
  | Truncated { what } -> Printf.sprintf "truncated while reading %s" what
  | Oversized { len; max } ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len max
  | Bad_version { found; expected } ->
    Printf.sprintf "protocol version %d, this build speaks version %d" found
      expected
  | Bad_tag { what; tag } -> Printf.sprintf "unknown %s tag %d" what tag
  | Trailing { extra } ->
    Printf.sprintf "%d trailing bytes after a complete message" extra
  | Bad_value { what; detail } -> Printf.sprintf "bad %s: %s" what detail
  | Io { detail } -> Printf.sprintf "socket error: %s" detail

let version = 2

(* The canonical-spec grammar is versioned independently of the wire
   protocol: a wire bump (new messages, new health fields) must not
   re-address every cached journal, or a rolling upgrade would silently
   discard finished work.  Bump this only when a change alters what a
   sample computes. *)
let canonical_version = 1

(* Big enough for a 100k-sample result frame (8 B/value), small enough
   that a corrupt length prefix cannot provoke a giant allocation. *)
let max_frame = 4 * 1024 * 1024

(* --- canonical spec strings -------------------------------------------- *)

let kind_canonical = function
  | Inverter_tpd { fanout } -> Printf.sprintf "inv:%d" fanout
  | Sram_snm { read } -> if read then "snm:read" else "snm:hold"
  | Idsat -> "idsat"

let spec_canonical ~pipeline spec =
  Printf.sprintf "v%d|kind=%s|n=%d|seed=%d|vdd=%.17g|retry=%d|pipe=%s"
    canonical_version (kind_canonical spec.kind) spec.n spec.seed spec.vdd
    spec.retry pipeline

let field_value fields key =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  List.find_map
    (fun f ->
      if String.length f >= plen && String.equal (String.sub f 0 plen) prefix
      then Some (String.sub f plen (String.length f - plen))
      else None)
    fields

let spec_of_canonical s =
  let fields = String.split_on_char '|' s in
  let ( let* ) = Result.bind in
  let get key =
    match field_value fields key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "canonical spec %S lacks %s" s key)
  in
  let int_of key v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "canonical spec field %s=%S not an int" key v)
  in
  match fields with
  | head :: _ when String.equal head (Printf.sprintf "v%d" canonical_version) ->
    let* kind_s = get "kind" in
    let* kind =
      match String.split_on_char ':' kind_s with
      | [ "inv"; f ] ->
        let* fanout = int_of "kind" f in
        Ok (Inverter_tpd { fanout })
      | [ "snm"; "read" ] -> Ok (Sram_snm { read = true })
      | [ "snm"; "hold" ] -> Ok (Sram_snm { read = false })
      | [ "idsat" ] -> Ok Idsat
      | _ -> Error (Printf.sprintf "unknown canonical kind %S" kind_s)
    in
    let* n = Result.bind (get "n") (int_of "n") in
    let* seed = Result.bind (get "seed") (int_of "seed") in
    let* vdd_s = get "vdd" in
    let* vdd =
      match float_of_string_opt vdd_s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "canonical vdd %S not a float" vdd_s)
    in
    let* retry = Result.bind (get "retry") (int_of "retry") in
    Ok { kind; n; seed; vdd; retry }
  | head :: _ ->
    Error (Printf.sprintf "canonical spec version %S not supported" head)
  | [] -> Error "empty canonical spec"

let canonical_pipeline s =
  field_value (String.split_on_char '|' s) "pipe"

let job_id canonical =
  Printf.sprintf "%08x%08x"
    (Vstat_util.Crc32.digest canonical)
    (Vstat_util.Crc32.digest (canonical ^ "#2"))

(* --- encoding ---------------------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_i64 b v = Buffer.add_int64_le b v
let add_f64 b v = add_i64 b (Int64.bits_of_float v)
let add_bool b v = add_u8 b (if v then 1 else 0)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_spec b spec =
  (match spec.kind with
  | Inverter_tpd { fanout } ->
    add_u8 b 1;
    add_u32 b fanout
  | Sram_snm { read } ->
    add_u8 b 2;
    add_bool b read
  | Idsat -> add_u8 b 3);
  add_u32 b spec.n;
  add_i64 b (Int64.of_int spec.seed);
  add_f64 b spec.vdd;
  add_u32 b spec.retry

let with_header f =
  let b = Buffer.create 64 in
  add_u32 b version;
  f b;
  Buffer.contents b

let encode_request req =
  with_header (fun b ->
      match req with
      | Submit { spec; deadline_s; client } ->
        add_u8 b 1;
        add_spec b spec;
        add_f64 b deadline_s;
        add_str b client
      | Status { id } ->
        add_u8 b 2;
        add_str b id
      | Result { id } ->
        add_u8 b 3;
        add_str b id
      | Health -> add_u8 b 4
      | Shutdown -> add_u8 b 5)

let add_summary b s =
  add_str b s.id;
  add_u32 b s.n;
  add_u32 b s.completed;
  add_u32 b s.failed;
  add_f64 b s.mean;
  add_f64 b s.std;
  add_f64 b s.ci_lo;
  add_f64 b s.ci_hi;
  add_bool b s.partial;
  add_str b s.cause;
  add_bool b s.cached;
  add_f64 b s.wall_s;
  add_u32 b s.retried;
  add_u32 b (Array.length s.values);
  Array.iter (fun v -> add_f64 b v) s.values

let encode_response resp =
  with_header (fun b ->
      match resp with
      | Accepted { id; cached } ->
        add_u8 b 1;
        add_str b id;
        add_bool b cached
      | Rejected { reason } -> (
        add_u8 b 2;
        match reason with
        | Queue_full { queued; queue_max } ->
          add_u8 b 1;
          add_u32 b queued;
          add_u32 b queue_max
        | Over_deadline { estimated_wait_s; deadline_s } ->
          add_u8 b 2;
          add_f64 b estimated_wait_s;
          add_f64 b deadline_s
        | Bad_request { detail } ->
          add_u8 b 3;
          add_str b detail)
      | Job_status { id; state } -> (
        add_u8 b 3;
        add_str b id;
        match state with
        | Queued { position } ->
          add_u8 b 1;
          add_u32 b position
        | Running -> add_u8 b 2
        | Done -> add_u8 b 3
        | Quarantined { attempts; detail } ->
          add_u8 b 4;
          add_u32 b attempts;
          add_str b detail)
      | Job_result s ->
        add_u8 b 4;
        add_summary b s
      | Unknown_id { id } ->
        add_u8 b 5;
        add_str b id
      | Health_report h ->
        add_u8 b 6;
        add_f64 b h.uptime_s;
        add_u32 b h.queued;
        add_u32 b h.running;
        add_u32 b h.finished;
        add_u32 b h.rejected;
        add_u32 b h.cache_hits;
        add_u32 b h.served;
        add_u32 b h.requeued;
        add_u32 b h.quarantined;
        add_u32 b h.worker_crashes;
        add_u32 b h.worker_hangs;
        add_i64 b (Int64.of_int h.state_bytes);
        add_u32 b h.evicted;
        add_u32 b (List.length h.workers);
        List.iter
          (fun w ->
            add_u32 b w.wid;
            add_u32 b w.generation;
            (match w.busy with
            | None -> add_bool b false
            | Some id ->
              add_bool b true;
              add_str b id);
            add_f64 b w.heartbeat_age_s;
            add_u32 b w.jobs_done)
          h.workers
      | Shutting_down -> add_u8 b 7)

(* --- decoding ---------------------------------------------------------- *)

exception Reject of error

type cursor = { src : string; limit : int; mutable pos : int }

let need cur k what =
  if cur.pos + k > cur.limit then raise (Reject (Truncated { what }))

let get_u8 cur what =
  need cur 1 what;
  let v = Char.code cur.src.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_u32 cur what =
  need cur 4 what;
  let v = Int32.to_int (String.get_int32_le cur.src cur.pos) land 0xFFFFFFFF in
  cur.pos <- cur.pos + 4;
  v

let get_i64 cur what =
  need cur 8 what;
  let v = String.get_int64_le cur.src cur.pos in
  cur.pos <- cur.pos + 8;
  v

let get_f64 cur what = Int64.float_of_bits (get_i64 cur what)

let get_bool cur what =
  match get_u8 cur what with
  | 0 -> false
  | 1 -> true
  | tag -> raise (Reject (Bad_tag { what; tag }))

let get_str cur what =
  let len = get_u32 cur (what ^ " length") in
  if len > max_frame then raise (Reject (Oversized { len; max = max_frame }));
  need cur len what;
  let s = String.sub cur.src cur.pos len in
  cur.pos <- cur.pos + len;
  s

let positive what v =
  if v < 1 then
    raise
      (Reject (Bad_value { what; detail = Printf.sprintf "%d is not >= 1" v }));
  v

let finite what v =
  if not (Float.is_finite v) then
    raise (Reject (Bad_value { what; detail = "not finite" }));
  v

let get_spec cur =
  let kind =
    match get_u8 cur "job kind" with
    | 1 ->
      let fanout = positive "fanout" (get_u32 cur "fanout") in
      Inverter_tpd { fanout }
    | 2 -> Sram_snm { read = get_bool cur "snm mode" }
    | 3 -> Idsat
    | tag -> raise (Reject (Bad_tag { what = "job kind"; tag }))
  in
  let n = positive "sample count" (get_u32 cur "sample count") in
  let seed = Int64.to_int (get_i64 cur "seed") in
  let vdd = finite "vdd" (get_f64 cur "vdd") in
  let retry = positive "retry depth" (get_u32 cur "retry depth") in
  { kind; n; seed; vdd; retry }

let decode ~what f s =
  let cur = { src = s; limit = String.length s; pos = 0 } in
  match
    let found = get_u32 cur "version" in
    if found <> version then raise (Reject (Bad_version { found; expected = version }));
    let v = f cur in
    if cur.pos <> cur.limit then
      raise (Reject (Trailing { extra = cur.limit - cur.pos }));
    v
  with
  | v -> Ok v
  | exception Reject e -> Error e
  | exception _ -> Error (Bad_value { what; detail = "undecodable payload" })

let decode_request =
  decode ~what:"request" @@ fun cur ->
  match get_u8 cur "request" with
  | 1 ->
    let spec = get_spec cur in
    let deadline_s = finite "deadline" (get_f64 cur "deadline") in
    let client = get_str cur "client id" in
    Submit { spec; deadline_s; client }
  | 2 -> Status { id = get_str cur "job id" }
  | 3 -> Result { id = get_str cur "job id" }
  | 4 -> Health
  | 5 -> Shutdown
  | tag -> raise (Reject (Bad_tag { what = "request"; tag }))

let get_summary cur =
  let id = get_str cur "summary id" in
  let n = get_u32 cur "summary n" in
  let completed = get_u32 cur "summary completed" in
  let failed = get_u32 cur "summary failed" in
  let mean = get_f64 cur "summary mean" in
  let std = get_f64 cur "summary std" in
  let ci_lo = get_f64 cur "summary ci_lo" in
  let ci_hi = get_f64 cur "summary ci_hi" in
  let partial = get_bool cur "summary partial" in
  let cause = get_str cur "summary cause" in
  let cached = get_bool cur "summary cached" in
  let wall_s = get_f64 cur "summary wall_s" in
  let retried = get_u32 cur "summary retried" in
  let n_values = get_u32 cur "summary value count" in
  if n_values > max_frame / 8 then
    raise (Reject (Oversized { len = n_values * 8; max = max_frame }));
  let values = Array.init n_values (fun _ -> get_f64 cur "summary value") in
  {
    id;
    n;
    completed;
    failed;
    mean;
    std;
    ci_lo;
    ci_hi;
    partial;
    cause;
    cached;
    wall_s;
    retried;
    values;
  }

let decode_response =
  decode ~what:"response" @@ fun cur ->
  match get_u8 cur "response" with
  | 1 ->
    let id = get_str cur "job id" in
    let cached = get_bool cur "cached flag" in
    Accepted { id; cached }
  | 2 ->
    let reason =
      match get_u8 cur "reject reason" with
      | 1 ->
        let queued = get_u32 cur "queued count" in
        let queue_max = get_u32 cur "queue max" in
        Queue_full { queued; queue_max }
      | 2 ->
        let estimated_wait_s = get_f64 cur "estimated wait" in
        let deadline_s = get_f64 cur "deadline" in
        Over_deadline { estimated_wait_s; deadline_s }
      | 3 -> Bad_request { detail = get_str cur "reject detail" }
      | tag -> raise (Reject (Bad_tag { what = "reject reason"; tag }))
    in
    Rejected { reason }
  | 3 ->
    let id = get_str cur "job id" in
    let state =
      match get_u8 cur "job state" with
      | 1 -> Queued { position = get_u32 cur "queue position" }
      | 2 -> Running
      | 3 -> Done
      | 4 ->
        let attempts = get_u32 cur "quarantine attempts" in
        let detail = get_str cur "quarantine detail" in
        Quarantined { attempts; detail }
      | tag -> raise (Reject (Bad_tag { what = "job state"; tag }))
    in
    Job_status { id; state }
  | 4 -> Job_result (get_summary cur)
  | 5 -> Unknown_id { id = get_str cur "job id" }
  | 6 ->
    let uptime_s = get_f64 cur "uptime" in
    let queued = get_u32 cur "queued count" in
    let running = get_u32 cur "running count" in
    let finished = get_u32 cur "finished count" in
    let rejected = get_u32 cur "rejected count" in
    let cache_hits = get_u32 cur "cache hit count" in
    let served = get_u32 cur "served count" in
    let requeued = get_u32 cur "requeued count" in
    let quarantined = get_u32 cur "quarantined count" in
    let worker_crashes = get_u32 cur "worker crash count" in
    let worker_hangs = get_u32 cur "worker hang count" in
    let state_bytes = Int64.to_int (get_i64 cur "state bytes") in
    let evicted = get_u32 cur "evicted count" in
    let n_workers = get_u32 cur "worker count" in
    (* A worker_health entry is at least 22 bytes on the wire; anything
       past that bound is a corrupt count, not a plausible pool. *)
    if n_workers > max_frame / 22 then
      raise (Reject (Oversized { len = n_workers * 22; max = max_frame }));
    let workers =
      List.init n_workers (fun _ ->
          let wid = get_u32 cur "worker id" in
          let generation = get_u32 cur "worker generation" in
          let busy =
            if get_bool cur "worker busy flag" then
              Some (get_str cur "worker busy id")
            else None
          in
          let heartbeat_age_s = get_f64 cur "worker heartbeat age" in
          let jobs_done = get_u32 cur "worker jobs done" in
          { wid; generation; busy; heartbeat_age_s; jobs_done })
    in
    Health_report
      {
        uptime_s;
        queued;
        running;
        finished;
        rejected;
        cache_hits;
        served;
        requeued;
        quarantined;
        worker_crashes;
        worker_hangs;
        state_bytes;
        evicted;
        workers;
      }
  | 7 -> Shutting_down
  | tag -> raise (Reject (Bad_tag { what = "response"; tag }))

(* --- framing ----------------------------------------------------------- *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let written =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + written) (len - written)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then Error (Oversized { len; max = max_frame })
  else begin
    let header = Bytes.create 4 in
    Bytes.set_int32_le header 0 (Int32.of_int len);
    match
      write_all fd (Bytes.unsafe_to_string header) 0 4;
      write_all fd payload 0 len
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io { detail = Unix.error_message e })
  end

let read_exact fd n what =
  let buf = Bytes.create n in
  let rec loop pos =
    if pos >= n then Ok (Bytes.unsafe_to_string buf)
    else begin
      match Unix.read fd buf pos (n - pos) with
      | 0 -> Error (Truncated { what })
      | k -> loop (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop pos
      | exception Unix.Unix_error (e, _, _) ->
        Error (Io { detail = Unix.error_message e })
    end
  in
  loop 0

let read_frame fd =
  match read_exact fd 4 "frame length" with
  | Error _ as e -> e
  | Ok header ->
    let len = Int32.to_int (String.get_int32_le header 0) land 0xFFFFFFFF in
    if len > max_frame then Error (Oversized { len; max = max_frame })
    else read_exact fd len "frame payload"
