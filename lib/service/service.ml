(* The vstatd daemon core: admission control, a single-worker execution
   domain, and a journal-backed result cache.

   Concurrency picture: the accept loop (whichever domain calls [serve])
   and the worker domain share [state] under one mutex; the worker holds
   it only to pop/publish, never while computing.  Shutdown is a single
   atomic flag: signal handlers call [stop], the accept loop polls it
   between selects, and the worker's Checkpoint deadline polls it at
   sample boundaries — so an in-flight job drains gracefully and flushes
   its journal instead of being torn. *)

module P = Protocol
module C = Vstat_runtime.Checkpoint
module Runtime = Vstat_runtime.Runtime
module Deadline = Vstat_runtime.Deadline
module Journal = Vstat_runtime.Journal
module FS = Vstat_device.Fault_inject.Service

let log_src = Logs.Src.create "vstat.service" ~doc:"vstatd daemon core"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket_path : string;
  state_dir : string;
  queue_max : int;
  jobs : int;
  pipeline_seed : int;
  mc_per_geometry : int;
  inject : FS.config option;
}

let default_config =
  {
    socket_path = Filename.concat "vstatd-state" "vstatd.sock";
    state_dir = "vstatd-state";
    queue_max = 32;
    jobs = 1;
    pipeline_seed = 42;
    mc_per_geometry = 300;
    inject = None;
  }

let pipeline_signature cfg =
  Printf.sprintf "%d:%d" cfg.pipeline_seed cfg.mc_per_geometry

(* Admission-time spec validation: everything here is a [Bad_request],
   shed before any resource is committed. *)
let validate _cfg (spec : P.spec) =
  if spec.n < 1 then Error "sample count must be >= 1"
  else if spec.n > 100_000 then
    Error "sample count above 100000 (result frame would exceed max_frame)"
  else if spec.retry < 1 || spec.retry > 16 then
    Error "retry depth outside [1, 16]"
  else if not (Float.is_finite spec.vdd && spec.vdd >= 0.3 && spec.vdd <= 1.5)
  then Error "vdd outside [0.3, 1.5] V"
  else
    match spec.kind with
    | P.Inverter_tpd { fanout } when fanout < 1 || fanout > 16 ->
      Error "fanout outside [1, 16]"
    | P.Inverter_tpd _ | P.Sram_snm _ | P.Idsat -> Ok ()

type job = {
  id : string;
  spec : P.spec;
  canonical : string;
  submitted_ns : int64;
  deadline_s : float;  (* <= 0: none *)
}

type entry = Queued of job | Running of job | Finished of P.summary

type t = {
  config : config;
  pipeline : Vstat_core.Pipeline.t;
  listen_fd : Unix.file_descr;
  mu : Mutex.t;
  table : (string, entry) Hashtbl.t;
  queue : string Queue.t;
  stopping : bool Atomic.t;
  started_ns : int64;
  mutable queued_samples : int;
  mutable running_count : int;   (* 0 or 1 *)
  mutable finished_count : int;
  mutable rejected_count : int;
  mutable cache_hit_count : int;
  mutable served_count : int;
  mutable ewma_sample_s : float; (* smoothed seconds per evaluated sample *)
  mutable worker : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let elapsed_s since_ns =
  Int64.to_float (Int64.sub (Deadline.now_ns ()) since_ns) *. 1e-9

(* --- job execution ----------------------------------------------------- *)

(* Same key scheme as the device-level chaos harness: injective in
   (index, attempt) below 64 attempts, so every retry re-rolls the fault
   decision while staying a pure function of the sample index. *)
let inject_key ~index ~attempt = (index * 64) + attempt

let measure t (spec : P.spec) rng =
  let tech = Vstat_core.Techs.stochastic_vs t.pipeline ~rng ~vdd:spec.vdd in
  match spec.kind with
  | P.Idsat ->
    Vstat_device.Metrics.idsat
      (tech.Vstat_cells.Celltech.nmos ~w_nm:200.0)
      ~vdd:spec.vdd
  | P.Inverter_tpd { fanout } ->
    let s =
      Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout
    in
    (Vstat_cells.Inverter.measure s).Vstat_cells.Inverter.tpd
  | P.Sram_snm { read } ->
    Vstat_cells.Sram6t.snm
      (Vstat_cells.Sram6t.sample tech)
      ~mode:(if read then Vstat_cells.Sram6t.Read else Vstat_cells.Sram6t.Hold)

let sample_fn t (spec : P.spec) ~attempt ~index rng =
  (* Service-layer chaos first, before the sample body: a Stall only
     delays this worker, an Abort raises into the retry ladder.  Either
     way the value eventually computed from [rng] is unchanged. *)
  (match t.config.inject with
  | None -> ()
  | Some cfg -> (
    match FS.plan cfg ~key:(inject_key ~index ~attempt) with
    | None -> ()
    | Some (FS.Stall s) -> Unix.sleepf s
    | Some FS.Abort ->
      raise
        (Vstat_device.Fault_inject.Injected
           (Printf.sprintf "injected service abort (sample %d attempt %d)"
              index attempt))));
  measure t spec rng

let cause_string t = function
  | C.Finished -> "finished"
  | C.Deadline_reached ->
    if Atomic.get t.stopping then "shutdown" else "deadline"
  | C.Signalled _ -> "shutdown"

let summary_of_outcome t job (o : float C.outcome) =
  let values = C.values o in
  let len = Array.length values in
  let mean = if len > 0 then Vstat_stats.Descriptive.mean values else Float.nan in
  let std = if len > 1 then Vstat_stats.Descriptive.std values else Float.nan in
  let ci_lo, ci_hi =
    if len > 1 then Vstat_stats.Descriptive.mean_ci values
    else (Float.nan, Float.nan)
  in
  let newly_evaluated = o.C.completed - o.C.restored in
  {
    P.id = job.id;
    n = job.spec.P.n;
    completed = o.C.completed;
    failed = List.length (C.failures o);
    mean;
    std;
    ci_lo;
    ci_hi;
    partial = not (C.is_complete o);
    cause = cause_string t o.C.cause;
    cached = newly_evaluated = 0 && o.C.restored > 0;
    wall_s = o.C.stats.Runtime.wall_s;
    retried = o.C.stats.Runtime.retried_samples;
    values;
  }

let error_summary job detail =
  {
    P.id = job.id;
    n = job.spec.P.n;
    completed = 0;
    failed = job.spec.P.n;
    mean = Float.nan;
    std = Float.nan;
    ci_lo = Float.nan;
    ci_hi = Float.nan;
    partial = true;
    cause = "error: " ^ detail;
    cached = false;
    wall_s = 0.0;
    retried = 0;
    values = [||];
  }

let run_job t job =
  let settings = C.settings ~every:8 ~resume:true t.config.state_dir in
  let stop_flag () = Atomic.get t.stopping in
  let deadline =
    if job.deadline_s > 0.0 then begin
      (* The deadline is anchored at submission: queue wait eats budget. *)
      let remaining = job.deadline_s -. elapsed_s job.submitted_ns in
      Deadline.combine
        (Deadline.watchdog ~seconds:(Float.max remaining 1e-3))
        stop_flag
    end
    else stop_flag
  in
  let retry = Runtime.retry job.spec.P.retry in
  let jobs = if t.config.jobs > 0 then Some t.config.jobs else None in
  let o =
    C.run ?jobs ~retry ~deadline ~settings ~fingerprint:job.canonical
      ~codec:C.float_codec ~label:job.id
      ~rng:(Vstat_util.Rng.create ~seed:job.spec.P.seed)
      ~n:job.spec.P.n
      ~f:(fun ~attempt ~index rng -> sample_fn t job.spec ~attempt ~index rng)
      ()
  in
  summary_of_outcome t job o

let execute t job =
  match run_job t job with
  | summary -> summary
  | exception Journal.Rejected e ->
    (* The cached snapshot under this content address does not belong to
       this job (CRC collision or stale file): quarantine it — the typed
       error names the path — and recompute from scratch. *)
    let path = Journal.error_path e in
    Log.warn (fun m ->
        m "job %s: quarantining snapshot: %s" job.id (Journal.error_to_string e));
    (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ());
    (match run_job t job with
    | summary -> summary
    | exception exn -> error_summary job (Printexc.to_string exn))
  | exception exn -> error_summary job (Printexc.to_string exn)

let rec worker_loop t =
  if Atomic.get t.stopping then ()
  else begin
    let next =
      locked t (fun () ->
          match Queue.take_opt t.queue with
          | None -> None
          | Some id -> (
            match Hashtbl.find_opt t.table id with
            | Some (Queued job) ->
              Hashtbl.replace t.table id (Running job);
              t.queued_samples <- t.queued_samples - job.spec.P.n;
              t.running_count <- 1;
              Some job
            | _ -> None))
    in
    match next with
    | None ->
      (* No timed condition wait in OCaml; a short poll keeps the worker
         simple and signal-safe.  20 ms of added queue latency is noise
         next to any real Monte Carlo job. *)
      Unix.sleepf 0.02;
      worker_loop t
    | Some job ->
      let summary = execute t job in
      let evaluated = summary.P.completed in
      locked t (fun () ->
          Hashtbl.replace t.table job.id (Finished summary);
          t.running_count <- 0;
          t.finished_count <- t.finished_count + 1;
          let newly = evaluated - if summary.P.cached then evaluated else 0 in
          if newly > 0 && summary.P.wall_s > 0.0 then begin
            let per = summary.P.wall_s /. Float.of_int newly in
            t.ewma_sample_s <-
              (if t.ewma_sample_s <= 0.0 then per
               else (0.7 *. t.ewma_sample_s) +. (0.3 *. per))
          end);
      Log.info (fun m ->
          m "job %s: %s (%d/%d samples, %.3fs)" job.id summary.P.cause
            summary.P.completed summary.P.n summary.P.wall_s);
      worker_loop t
  end

(* --- admission --------------------------------------------------------- *)

let enqueue_locked t job =
  Hashtbl.replace t.table job.id (Queued job);
  Queue.push job.id t.queue;
  t.queued_samples <- t.queued_samples + job.spec.P.n

let admit t (spec : P.spec) ~deadline_s =
  match validate t.config spec with
  | Error detail ->
    locked t (fun () -> t.rejected_count <- t.rejected_count + 1);
    P.Rejected { reason = P.Bad_request { detail } }
  | Ok () ->
    let canonical =
      P.spec_canonical ~pipeline:(pipeline_signature t.config) spec
    in
    let id = P.job_id canonical in
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | Some (Finished _) ->
          t.cache_hit_count <- t.cache_hit_count + 1;
          P.Accepted { id; cached = true }
        | Some (Queued _ | Running _) -> P.Accepted { id; cached = false }
        | None ->
          let backlog = t.queued_samples + spec.P.n in
          let estimated_wait_s = t.ewma_sample_s *. Float.of_int backlog in
          if deadline_s > 0.0 && estimated_wait_s > deadline_s then begin
            t.rejected_count <- t.rejected_count + 1;
            P.Rejected
              { reason = P.Over_deadline { estimated_wait_s; deadline_s } }
          end
          else if Queue.length t.queue >= t.config.queue_max then begin
            t.rejected_count <- t.rejected_count + 1;
            P.Rejected
              {
                reason =
                  P.Queue_full
                    {
                      queued = Queue.length t.queue;
                      queue_max = t.config.queue_max;
                    };
              }
          end
          else begin
            enqueue_locked t
              {
                id;
                spec;
                canonical;
                submitted_ns = Deadline.now_ns ();
                deadline_s;
              };
            P.Accepted { id; cached = false }
          end)

let queue_position_locked t id =
  let pos = ref (-1) and k = ref 0 in
  Queue.iter
    (fun qid ->
      if !pos < 0 && String.equal qid id then pos := !k;
      incr k)
    t.queue;
  !pos

let handle t req =
  match req with
  | P.Submit { spec; deadline_s } -> admit t spec ~deadline_s
  | P.Status { id } ->
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> P.Unknown_id { id }
        | Some (Queued _) ->
          let position = Int.max 0 (queue_position_locked t id) in
          P.Job_status { id; state = P.Queued { position } }
        | Some (Running _) -> P.Job_status { id; state = P.Running }
        | Some (Finished _) -> P.Job_status { id; state = P.Done })
  | P.Result { id } ->
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> P.Unknown_id { id }
        | Some (Queued _) ->
          let position = Int.max 0 (queue_position_locked t id) in
          P.Job_status { id; state = P.Queued { position } }
        | Some (Running _) -> P.Job_status { id; state = P.Running }
        | Some (Finished summary) ->
          t.served_count <- t.served_count + 1;
          P.Job_result summary)
  | P.Health ->
    locked t (fun () ->
        P.Health_report
          {
            uptime_s = elapsed_s t.started_ns;
            queued = Queue.length t.queue;
            running = t.running_count;
            finished = t.finished_count;
            rejected = t.rejected_count;
            cache_hits = t.cache_hit_count;
            served = t.served_count;
          })
  | P.Shutdown ->
    Atomic.set t.stopping true;
    P.Shutting_down

(* --- startup recovery -------------------------------------------------- *)

let recover t =
  let dir = t.config.state_dir in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".ckpt" then begin
        let path = Filename.concat dir f in
        match Journal.read ~path with
        | Error e ->
          (* The typed payload names the offending snapshot; quarantine it
             so a corrupt cache entry cannot wedge every restart. *)
          Log.warn (fun m ->
              m "recovery: quarantining: %s" (Journal.error_to_string e));
          (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ())
        | Ok snap -> (
          (* Checkpoint appends "|codec:<name>" to the caller fingerprint
             before journaling; strip it to recover the canonical spec. *)
          let fp =
            let full = snap.Journal.identity.Journal.fingerprint in
            match String.rindex_opt full '|' with
            | Some i
              when String.length full - i > 7
                   && String.equal (String.sub full (i + 1) 6) "codec:" ->
              String.sub full 0 i
            | _ -> full
          in
          match P.canonical_pipeline fp with
          | Some p when String.equal p (pipeline_signature t.config) -> (
            match P.spec_of_canonical fp with
            | Error detail ->
              Log.warn (fun m ->
                  m "recovery: %s: unparseable fingerprint (%s); skipped" path
                    detail)
            | Ok spec ->
              let id = P.job_id fp in
              if String.equal id snap.Journal.identity.Journal.label then begin
                let done_n = Array.length snap.Journal.entries in
                Log.info (fun m ->
                    m "recovery: %s: %d/%d samples; re-enqueued" path done_n
                      spec.P.n);
                (* Re-run through the normal path: Checkpoint resume
                   restores completed samples bit-identically from the
                   journal, so a finished job costs nothing and a partial
                   one computes only its missing indices. *)
                locked t (fun () ->
                    enqueue_locked t
                      {
                        id;
                        spec;
                        canonical = fp;
                        submitted_ns = Deadline.now_ns ();
                        deadline_s = 0.0;
                      })
              end
              else
                Log.warn (fun m ->
                    m "recovery: %s: label %s does not match content id %s; \
                       skipped"
                      path snap.Journal.identity.Journal.label id))
          | _ ->
            Log.info (fun m ->
                m "recovery: %s: different pipeline signature; left in place"
                  path))
      end)
    files

(* --- connection handling ----------------------------------------------- *)

let handle_conn t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  match P.read_frame fd with
  | Error e ->
    (* A half-open or garbled client: answer typed if the socket still
       writes, then drop. *)
    ignore
      (P.write_frame fd
         (P.encode_response
            (P.Rejected
               { reason = P.Bad_request { detail = P.error_to_string e } })))
  | Ok payload ->
    let resp =
      match P.decode_request payload with
      | Error e ->
        locked t (fun () -> t.rejected_count <- t.rejected_count + 1);
        P.Rejected { reason = P.Bad_request { detail = P.error_to_string e } }
      | Ok req -> handle t req
    in
    (match P.write_frame fd (P.encode_response resp) with
    | Ok () -> ()
    | Error e ->
      Log.debug (fun m -> m "response write failed: %s" (P.error_to_string e)))

(* --- lifecycle --------------------------------------------------------- *)

let mkdir_p dir =
  let rec mk d =
    if not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  if not (String.equal dir "") then mk dir

let create ?pipeline config =
  if config.queue_max < 1 then
    invalid_arg "Service.create: queue_max must be >= 1";
  if config.mc_per_geometry < 10 then
    invalid_arg "Service.create: mc_per_geometry must be >= 10";
  mkdir_p config.state_dir;
  mkdir_p (Filename.dirname config.socket_path);
  let pipeline =
    match pipeline with
    | Some p -> p
    | None ->
      Log.info (fun m ->
          m "building statistical pipeline (seed %d, %d samples/geometry)"
            config.pipeline_seed config.mc_per_geometry);
      Vstat_core.Pipeline.build ~seed:config.pipeline_seed
        ~mc_per_geometry:config.mc_per_geometry ()
  in
  if Sys.file_exists config.socket_path then
    (try Sys.remove config.socket_path with Sys_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let t =
    {
      config;
      pipeline;
      listen_fd;
      mu = Mutex.create ();
      table = Hashtbl.create 64;
      queue = Queue.create ();
      stopping = Atomic.make false;
      started_ns = Deadline.now_ns ();
      queued_samples = 0;
      running_count = 0;
      finished_count = 0;
      rejected_count = 0;
      cache_hit_count = 0;
      served_count = 0;
      ewma_sample_s = 0.0;
      worker = None;
    }
  in
  recover t;
  t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
  Log.info (fun m -> m "listening on %s" config.socket_path);
  t

let stop t = Atomic.set t.stopping true

let serve t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        (match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          (try handle_conn t fd
           with exn ->
             Log.warn (fun m ->
                 m "connection handler raised: %s" (Printexc.to_string exn)));
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> ());
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  Log.info (fun m -> m "draining worker");
  (match t.worker with
  | Some d ->
    Domain.join d;
    t.worker <- None
  | None -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.config.socket_path with Sys_error _ -> ());
  Log.info (fun m -> m "stopped")
