(* The vstatd daemon core: admission control, a supervised pool of worker
   domains over a client-fair queue, and a journal-backed result cache
   bounded by an LRU byte budget.

   Concurrency picture: the accept loop (whichever domain calls [serve]),
   the N worker domains and the supervisor domain share [state] under one
   mutex; workers hold it only to pop/publish, never while computing.
   Each worker generation owns a small set of atomic cells (heartbeat,
   busy job, exit flag, chaos requests) that are written lock-free from
   the hot path — the supervisor reads them to detect crashed workers
   (domain exited; [Domain.join] surfaces the exception) and hung workers
   (no heartbeat past the watchdog budget).  Victims are requeued at the
   front of their client's line and resume from their checkpoint journal,
   so a crashed-and-requeued job returns bit-identical bytes; a job that
   keeps killing workers is quarantined after [poison_retries] rounds.

   OCaml domains cannot be killed, so a hung worker is never reclaimed
   forcibly: the supervisor retires it (a flag its deadline poll checks),
   moves it to the slot's zombie list and spawns a replacement generation.
   The zombie drains at its next sample boundary and its stale result is
   discarded by an ownership check at publish time ([Running] records the
   (worker, generation) pair that owns the job).  The zombie and its
   replacement may briefly race on the same journal file; that is safe
   because journal flushes are write-temp -> fsync -> atomic-rename and
   every sample is a pure function of (spec, index) — either writer's
   snapshot is consistent and correct.

   Shutdown is a single atomic flag: signal handlers call [stop], the
   accept loop polls it between selects, and every worker's deadline polls
   it at sample boundaries — in-flight jobs drain gracefully and flush
   their journals instead of being torn. *)

module P = Protocol
module C = Vstat_runtime.Checkpoint
module Runtime = Vstat_runtime.Runtime
module Deadline = Vstat_runtime.Deadline
module Journal = Vstat_runtime.Journal
module FS = Vstat_device.Fault_inject.Service

let log_src = Logs.Src.create "vstat.service" ~doc:"vstatd daemon core"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket_path : string;
  state_dir : string;
  queue_max : int;
  workers : int;
  jobs : int;
  poison_retries : int;
  hang_timeout_s : float;
  state_max_bytes : int;
  pipeline_seed : int;
  mc_per_geometry : int;
  inject : FS.config option;
}

let default_config =
  {
    socket_path = Filename.concat "vstatd-state" "vstatd.sock";
    state_dir = "vstatd-state";
    queue_max = 32;
    workers = 1;
    jobs = 1;
    poison_retries = 3;
    hang_timeout_s = 30.0;
    state_max_bytes = 0;
    pipeline_seed = 42;
    mc_per_geometry = 300;
    inject = None;
  }

let pipeline_signature cfg =
  Printf.sprintf "%d:%d" cfg.pipeline_seed cfg.mc_per_geometry

(* Admission-time spec validation: everything here is a [Bad_request],
   shed before any resource is committed. *)
let validate _cfg (spec : P.spec) =
  if spec.n < 1 then Error "sample count must be >= 1"
  else if spec.n > 100_000 then
    Error "sample count above 100000 (result frame would exceed max_frame)"
  else if spec.retry < 1 || spec.retry > 16 then
    Error "retry depth outside [1, 16]"
  else if not (Float.is_finite spec.vdd && spec.vdd >= 0.3 && spec.vdd <= 1.5)
  then Error "vdd outside [0.3, 1.5] V"
  else
    match spec.kind with
    | P.Inverter_tpd { fanout } when fanout < 1 || fanout > 16 ->
      Error "fanout outside [1, 16]"
    | P.Inverter_tpd _ | P.Sram_snm _ | P.Idsat -> Ok ()

(* The admission wait estimate, exposed pure for tests: the backlog is in
   samples and the pool drains [workers] jobs concurrently, so the
   expected wait divides by the pool width.  (A single-worker daemon
   reduces to the obvious ewma * backlog.) *)
let estimate_wait_s ~ewma_sample_s ~backlog_samples ~workers =
  ewma_sample_s *. Float.of_int backlog_samples
  /. Float.of_int (Int.max 1 workers)

type job = {
  id : string;
  spec : P.spec;
  canonical : string;
  client : string;
  submitted_ns : int64;
  deadline_s : float;  (* <= 0: none *)
}

(* [round] is the 1-based execution attempt of the whole job (distinct
   from the per-sample retry ladder): bumped every time a crash or hang
   forces a requeue, capped by [poison_retries]. *)
type entry =
  | Queued of { job : job; round : int }
  | Running of { job : job; round : int; wid : int; gen : int }
  | Finished of P.summary
  | Quarantined of { attempts : int; detail : string }

(* One spawned worker generation.  All fields the domain writes are
   atomics; [gen] is immutable and [domain] is supervisor-owned (set once
   right after spawn, cleared at join). *)
type wstate = {
  gen : int;
  heartbeat_ns : int64 Atomic.t;
  busy : string option Atomic.t;
  exited : bool Atomic.t;   (* set in the domain body's [finally] *)
  retired : bool Atomic.t;  (* supervisor verdict: stop, you were replaced *)
  crash_req : bool Atomic.t;      (* chaos: die at the next sample boundary *)
  hang_until_ns : int64 option Atomic.t;  (* chaos: freeze heartbeats *)
  mutable domain : unit Domain.t option;
}

(* A pool slot: a stable identity ([wid]) surviving worker replacement.
   [cur] and [zombies] are mutated only under the state mutex. *)
type slot = {
  wid : int;
  jobs_done : int Atomic.t;  (* across all generations of this slot *)
  mutable cur : wstate;
  mutable zombies : wstate list;
}

type file_entry = { f_bytes : int; f_seq : int }

type t = {
  config : config;
  pipeline : Vstat_core.Pipeline.t;
  listen_fd : Unix.file_descr;
  mu : Mutex.t;
  table : (string, entry) Hashtbl.t;
  queue : string Fair_queue.t;
  stopping : bool Atomic.t;
  started_ns : int64;
  mutable queued_samples : int;
  mutable running_count : int;
  mutable finished_count : int;
  mutable rejected_count : int;
  mutable cache_hit_count : int;
  mutable served_count : int;
  mutable requeued_count : int;
  mutable quarantined_count : int;
  mutable worker_crash_count : int;
  mutable worker_hang_count : int;
  mutable ewma_sample_s : float; (* smoothed seconds per evaluated sample *)
  (* state-dir accounting (all under [mu]): basename -> size + LRU seq *)
  files : (string, file_entry) Hashtbl.t;
  mutable file_seq : int;
  mutable state_bytes : int;
  mutable evicted_count : int;
  mutable slots : slot array;
  mutable supervisor : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let elapsed_s since_ns =
  Int64.to_float (Int64.sub (Deadline.now_ns ()) since_ns) *. 1e-9

(* --- bounded state dir -------------------------------------------------- *)

let snap_basenames t id =
  let s = C.settings t.config.state_dir in
  (Filename.basename (C.snapshot_path s id),
   Filename.basename (C.manifest_path s id))

let is_bad fname = Filename.check_suffix fname ".bad"

let tracked fname =
  Filename.check_suffix fname ".ckpt"
  || Filename.check_suffix fname ".json"
  || is_bad fname

(* The job id a state file belongs to: strip a ".bad" quarantine marker,
   then the snapshot/manifest extension. *)
let file_stem fname =
  let f = if is_bad fname then Filename.chop_suffix fname ".bad" else fname in
  Filename.remove_extension f

let note_file_locked t fname =
  match Unix.stat (Filename.concat t.config.state_dir fname) with
  | { Unix.st_kind = Unix.S_REG; st_size; _ } ->
    t.file_seq <- t.file_seq + 1;
    let prev =
      match Hashtbl.find_opt t.files fname with
      | Some e -> e.f_bytes
      | None -> 0
    in
    Hashtbl.replace t.files fname { f_bytes = st_size; f_seq = t.file_seq };
    t.state_bytes <- t.state_bytes + st_size - prev
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let forget_file_locked t fname =
  match Hashtbl.find_opt t.files fname with
  | Some e ->
    Hashtbl.remove t.files fname;
    t.state_bytes <- t.state_bytes - e.f_bytes
  | None -> ()

(* LRU eviction down to the byte budget.  Quarantined [.bad] files go
   first (they exist only for post-mortems); then least-recently-finished
   journals whose job is neither queued nor running.  [state_max_bytes =
   0] disables the bound.  Evicting a finished job's journal only costs a
   recompute if the daemon restarts and the same spec is resubmitted —
   the in-memory summary keeps serving until then, and determinism makes
   the recompute bit-identical. *)
let evict_locked t =
  let budget = t.config.state_max_bytes in
  if budget > 0 && t.state_bytes > budget then begin
    let active =
      Hashtbl.fold
        (fun id e acc ->
          match e with
          | Queued _ | Running _ -> id :: acc
          | Finished _ | Quarantined _ -> acc)
        t.table []
      |> List.sort String.compare
    in
    let evictable fname =
      is_bad fname || not (List.mem (file_stem fname) active)
    in
    let stop = ref false in
    while t.state_bytes > budget && not !stop do
      let victims =
        Hashtbl.fold
          (fun fname e acc ->
            if not (evictable fname) then acc
            else (((if is_bad fname then 0 else 1), e.f_seq), fname) :: acc)
          t.files []
        (* f_seq is unique, so the rank order is total: the sort pins the
           victim choice independently of hash-bucket order. *)
        |> List.sort compare
      in
      match victims with
      | [] -> stop := true
      | (_, fname) :: _ ->
        (try Sys.remove (Filename.concat t.config.state_dir fname)
         with Sys_error _ -> ());
        forget_file_locked t fname;
        t.evicted_count <- t.evicted_count + 1;
        Log.info (fun m ->
            m "evicted %s (state dir now %d bytes, budget %d)" fname
              t.state_bytes budget)
    done
  end

(* Seed the accounting from whatever a previous daemon left behind.  The
   LRU order is the files' mtime order — wall-clock, but only its
   relative ordering is used, and only to pick eviction victims; no
   sample value ever depends on it. *)
let seed_files_locked t =
  let dir = t.config.state_dir in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter tracked
  |> List.filter_map (fun f ->
         match Unix.stat (Filename.concat dir f) with
         | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
           Some (f, st_size, st_mtime)
         | _ -> None
         | exception Unix.Unix_error _ -> None)
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
  |> List.iter (fun (f, size, _) ->
         t.file_seq <- t.file_seq + 1;
         Hashtbl.replace t.files f { f_bytes = size; f_seq = t.file_seq };
         t.state_bytes <- t.state_bytes + size)

(* --- job execution ------------------------------------------------------ *)

(* Same fmix64 stream as the device-level chaos harness, extended with the
   job-level round: injective for index < 0x40000 (admission caps n at
   100k) and attempt < 64, with [round = 1] reproducing the historical
   keys.  Mixing the round in means a requeued job re-rolls its fault
   plan — without it, a crash plan keyed only on (index, attempt) would
   fire identically on every rerun and no finite retry budget could ever
   clear the job (except when the configured rate is 1, which is exactly
   how the quarantine drill forces a poison job). *)
let inject_key ~round ~index ~attempt =
  ((((round - 1) * 0x40000) + index) * 64) + attempt

(* Heartbeat: written from every sample-boundary deadline poll — on the
   worker domain itself for serial jobs, on any pool domain for parallel
   ones; either way progress on the job refreshes the slot.  An armed
   [Hang] freeze simply skips the refresh until its deadline passes, so
   the supervisor sees exactly what a wedged worker would look like. *)
let beat st =
  let now = Deadline.now_ns () in
  match Atomic.get st.hang_until_ns with
  | Some until when Int64.compare now until < 0 -> ()
  | Some _ ->
    Atomic.set st.hang_until_ns None;
    Atomic.set st.heartbeat_ns now
  | None -> Atomic.set st.heartbeat_ns now

let measure t (spec : P.spec) rng =
  let tech = Vstat_core.Techs.stochastic_vs t.pipeline ~rng ~vdd:spec.vdd in
  match spec.kind with
  | P.Idsat ->
    Vstat_device.Metrics.idsat
      (tech.Vstat_cells.Celltech.nmos ~w_nm:200.0)
      ~vdd:spec.vdd
  | P.Inverter_tpd { fanout } ->
    let s =
      Vstat_cells.Inverter.sample tech ~wp_nm:600.0 ~wn_nm:300.0 ~fanout
    in
    (Vstat_cells.Inverter.measure s).Vstat_cells.Inverter.tpd
  | P.Sram_snm { read } ->
    Vstat_cells.Sram6t.snm
      (Vstat_cells.Sram6t.sample tech)
      ~mode:(if read then Vstat_cells.Sram6t.Read else Vstat_cells.Sram6t.Hold)

let sample_fn t st (spec : P.spec) ~round ~attempt ~index rng =
  (* Service-layer chaos first, before the sample body.  A Stall only
     delays this worker and an Abort raises into the retry ladder; a
     Crash or Hang cannot act here — the runtime's retry ladder catches
     every exception a sample raises, so a worker can only die at a
     sample boundary.  Instead they arm atomic requests that the worker's
     deadline poll and heartbeat honour.  Either way the value computed
     from [rng] is unchanged. *)
  (match t.config.inject with
  | None -> ()
  | Some cfg -> (
    match FS.plan cfg ~key:(inject_key ~round ~index ~attempt) with
    | None -> ()
    | Some (FS.Stall s) -> Unix.sleepf s
    | Some FS.Abort ->
      raise
        (Vstat_device.Fault_inject.Injected
           (Printf.sprintf "injected service abort (sample %d attempt %d)"
              index attempt))
    | Some FS.Crash -> Atomic.set st.crash_req true
    | Some (FS.Hang s) ->
      Atomic.set st.hang_until_ns
        (Some (Int64.add (Deadline.now_ns ()) (Int64.of_float (s *. 1e9))))));
  measure t spec rng

let cause_string t = function
  | C.Finished -> "finished"
  | C.Deadline_reached ->
    if Atomic.get t.stopping then "shutdown" else "deadline"
  | C.Signalled _ -> "shutdown"

let summary_of_outcome t job (o : float C.outcome) =
  let values = C.values o in
  let len = Array.length values in
  let mean = if len > 0 then Vstat_stats.Descriptive.mean values else Float.nan in
  let std = if len > 1 then Vstat_stats.Descriptive.std values else Float.nan in
  let ci_lo, ci_hi =
    if len > 1 then Vstat_stats.Descriptive.mean_ci values
    else (Float.nan, Float.nan)
  in
  let newly_evaluated = o.C.completed - o.C.restored in
  {
    P.id = job.id;
    n = job.spec.P.n;
    completed = o.C.completed;
    failed = List.length (C.failures o);
    mean;
    std;
    ci_lo;
    ci_hi;
    partial = not (C.is_complete o);
    cause = cause_string t o.C.cause;
    cached = newly_evaluated = 0 && o.C.restored > 0;
    wall_s = o.C.stats.Runtime.wall_s;
    retried = o.C.stats.Runtime.retried_samples;
    values;
  }

let error_summary job detail =
  {
    P.id = job.id;
    n = job.spec.P.n;
    completed = 0;
    failed = job.spec.P.n;
    mean = Float.nan;
    std = Float.nan;
    ci_lo = Float.nan;
    ci_hi = Float.nan;
    partial = true;
    cause = "error: " ^ detail;
    cached = false;
    wall_s = 0.0;
    retried = 0;
    values = [||];
  }

let run_job t st job ~round =
  let settings = C.settings ~every:8 ~resume:true t.config.state_dir in
  let stop_flag () =
    beat st;
    Atomic.get t.stopping || Atomic.get st.retired || Atomic.get st.crash_req
  in
  let deadline =
    if job.deadline_s > 0.0 then begin
      (* The deadline is anchored at submission: queue wait eats budget. *)
      let remaining = job.deadline_s -. elapsed_s job.submitted_ns in
      Deadline.combine
        (Deadline.watchdog ~seconds:(Float.max remaining 1e-3))
        stop_flag
    end
    else stop_flag
  in
  let retry = Runtime.retry job.spec.P.retry in
  let jobs = if t.config.jobs > 0 then Some t.config.jobs else None in
  let o =
    C.run ?jobs ~retry ~deadline ~settings ~fingerprint:job.canonical
      ~codec:C.float_codec ~label:job.id
      ~rng:(Vstat_util.Rng.create ~seed:job.spec.P.seed)
      ~n:job.spec.P.n
      ~f:(fun ~attempt ~index rng ->
        sample_fn t st job.spec ~round ~attempt ~index rng)
      ()
  in
  summary_of_outcome t job o

let execute t st job ~round =
  match run_job t st job ~round with
  | summary -> summary
  | exception Journal.Rejected e ->
    (* The cached snapshot under this content address does not belong to
       this job (CRC collision or stale file): quarantine it — the typed
       error names the path — and recompute from scratch. *)
    let path = Journal.error_path e in
    Log.warn (fun m ->
        m "job %s: quarantining snapshot: %s" job.id (Journal.error_to_string e));
    (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ());
    locked t (fun () ->
        let base = Filename.basename path in
        forget_file_locked t base;
        note_file_locked t (base ^ ".bad"));
    (match run_job t st job ~round with
    | summary -> summary
    | exception exn -> error_summary job (Printexc.to_string exn))
  | exception exn -> error_summary job (Printexc.to_string exn)

(* Publish under the ownership check: only the (worker, generation) pair
   recorded in the [Running] entry may land a result.  A zombie waking up
   after the watchdog replaced it falls through here and its summary is
   discarded — the requeued run's (identical) result is the one served. *)
let publish t job summary ~wid ~gen =
  locked t (fun () ->
      match Hashtbl.find_opt t.table job.id with
      | Some (Running { wid = w; gen = g; _ }) when w = wid && g = gen ->
        Hashtbl.replace t.table job.id (Finished summary);
        t.running_count <- t.running_count - 1;
        t.finished_count <- t.finished_count + 1;
        let evaluated = summary.P.completed in
        let newly = evaluated - if summary.P.cached then evaluated else 0 in
        if newly > 0 && summary.P.wall_s > 0.0 then begin
          let per = summary.P.wall_s /. Float.of_int newly in
          t.ewma_sample_s <-
            (if t.ewma_sample_s <= 0.0 then per
             else (0.7 *. t.ewma_sample_s) +. (0.3 *. per))
        end;
        let snap, manifest = snap_basenames t job.id in
        note_file_locked t snap;
        note_file_locked t manifest;
        evict_locked t;
        true
      | _ -> false)

let rec worker_loop t ~wid ~jobs_done st =
  beat st;
  if Atomic.get t.stopping || Atomic.get st.retired then ()
  else begin
    let next =
      locked t (fun () ->
          let rec take () =
            match Fair_queue.pop t.queue with
            | None -> None
            | Some id -> (
              match Hashtbl.find_opt t.table id with
              | Some (Queued { job; round }) ->
                Hashtbl.replace t.table id
                  (Running { job; round; wid; gen = st.gen });
                t.queued_samples <- t.queued_samples - job.spec.P.n;
                t.running_count <- t.running_count + 1;
                Some (job, round)
              | _ -> take () (* stale id; keep draining *))
          in
          take ())
    in
    match next with
    | None ->
      (* No timed condition wait in OCaml; a short poll keeps the worker
         simple and signal-safe.  20 ms of added queue latency is noise
         next to any real Monte Carlo job. *)
      Unix.sleepf 0.02;
      worker_loop t ~wid ~jobs_done st
    | Some (job, round) ->
      Atomic.set st.crash_req false;
      Atomic.set st.hang_until_ns None;
      Atomic.set st.busy (Some job.id);
      let summary = execute t st job ~round in
      if Atomic.get st.crash_req then
        (* The drained run already flushed its journal; dying here (and
           not publishing) is exactly what a segfaulting worker looks
           like to the supervisor, minus the lost process. *)
        raise
          (FS.Crashed
             (Printf.sprintf "injected worker crash (worker %d, job %s, \
                              round %d)"
                wid job.id round));
      let owned = publish t job summary ~wid ~gen:st.gen in
      Atomic.set st.busy None;
      if owned then begin
        Atomic.incr jobs_done;
        Log.info (fun m ->
            m "job %s: %s (%d/%d samples, %.3fs, worker %d)" job.id
              summary.P.cause summary.P.completed summary.P.n summary.P.wall_s
              wid)
      end
      else
        Log.info (fun m ->
            m "job %s: stale result from replaced worker %d gen %d discarded"
              job.id wid st.gen);
      worker_loop t ~wid ~jobs_done st
  end

let spawn_worker t ~wid ~jobs_done ~gen =
  let st =
    {
      gen;
      heartbeat_ns = Atomic.make (Deadline.now_ns ());
      busy = Atomic.make None;
      exited = Atomic.make false;
      retired = Atomic.make false;
      crash_req = Atomic.make false;
      hang_until_ns = Atomic.make None;
      domain = None;
    }
  in
  let d =
    Domain.spawn (fun () ->
        (* [exited] flips even when the body raises, so the supervisor's
           [Domain.join] never blocks on a live domain. *)
        Fun.protect
          ~finally:(fun () -> Atomic.set st.exited true)
          (fun () -> worker_loop t ~wid ~jobs_done st))
  in
  st.domain <- Some d;
  st

(* --- supervisor --------------------------------------------------------- *)

(* The hung-worker budget: heartbeats land at every sample boundary, so a
   healthy worker is silent for about one sample.  Eight smoothed sample
   times absorbs cost variance (a DFF bisection vs a device metric);
   [hang_timeout_s] floors the budget while the EWMA is still cold and
   lets tests pick a tight drill clock. *)
let watchdog_budget_locked t =
  Float.max t.config.hang_timeout_s (8.0 *. t.ewma_sample_s)

(* A worker generation owns at most one [Running] entry at a time, so the
   fold finds at most one match; the sort makes the pick independent of
   hash-bucket order all the same. *)
let victim_locked t ~wid ~gen =
  Hashtbl.fold
    (fun id e acc ->
      match e with
      | Running { job; round; wid = w; gen = g } when w = wid && g = gen ->
        (id, job, round) :: acc
      | _ -> acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  |> fun l -> List.nth_opt l 0

(* A worker died (or hung) while owning [job] on its [round]-th attempt:
   put the job back at the front of its client's line, or retire it for
   good once the poison budget is spent.  Requeued jobs resume from their
   checkpoint journal, so the eventual summary is bit-identical to an
   uninterrupted run. *)
let requeue_locked t (id, job, round) ~detail =
  t.running_count <- t.running_count - 1;
  if round >= t.config.poison_retries then begin
    Hashtbl.replace t.table id (Quarantined { attempts = round; detail });
    t.quarantined_count <- t.quarantined_count + 1;
    Log.err (fun m ->
        m "job %s: quarantined after %d attempt(s): %s" id round detail)
  end
  else begin
    Hashtbl.replace t.table id (Queued { job; round = round + 1 });
    Fair_queue.push_front t.queue ~client:job.client id;
    t.queued_samples <- t.queued_samples + job.spec.P.n;
    t.requeued_count <- t.requeued_count + 1;
    Log.warn (fun m ->
        m "job %s: requeued (attempt %d/%d): %s" id (round + 1)
          t.config.poison_retries detail)
  end

let check_slot_locked t now slot =
  (* Reap zombies whose domains finally drained. *)
  slot.zombies <-
    List.filter
      (fun z ->
        if Atomic.get z.exited then begin
          (match z.domain with
          | Some d -> (
            match Domain.join d with
            | () -> ()
            | exception exn ->
              (* Its job was already requeued when it was retired; the
                 late exception is post-mortem detail, not a new victim. *)
              Log.info (fun m ->
                  m "worker %d gen %d (replaced) exited with: %s" slot.wid
                    z.gen (Printexc.to_string exn)))
          | None -> ());
          false
        end
        else true)
      slot.zombies;
  let cur = slot.cur in
  if Atomic.get cur.exited then begin
    if not (Atomic.get t.stopping) then begin
      (* The only legitimate exits are shutdown and retirement, and a
         retired worker lives in [zombies] — so a [cur] that exited here
         either crashed (join surfaces the exception) or fell off its
         loop unexpectedly.  Either way: account, requeue its victim,
         respawn the slot. *)
      let crash =
        match cur.domain with
        | None -> None
        | Some d -> (
          match Domain.join d with
          | () -> None
          | exception exn -> Some exn)
      in
      cur.domain <- None;
      (match crash with
      | Some exn ->
        t.worker_crash_count <- t.worker_crash_count + 1;
        let detail =
          Printf.sprintf "worker crashed: %s" (Printexc.to_string exn)
        in
        Log.warn (fun m ->
            m "worker %d gen %d died: %s" slot.wid cur.gen
              (Printexc.to_string exn));
        (match victim_locked t ~wid:slot.wid ~gen:cur.gen with
        | Some v -> requeue_locked t v ~detail
        | None -> ())
      | None ->
        Log.warn (fun m ->
            m "worker %d gen %d exited unexpectedly; respawning" slot.wid
              cur.gen));
      slot.cur <-
        spawn_worker t ~wid:slot.wid ~jobs_done:slot.jobs_done
          ~gen:(cur.gen + 1)
    end
  end
  else begin
    match Atomic.get cur.busy with
    | None -> () (* idle workers poll the queue; no job, no watchdog *)
    | Some id ->
      let age_s =
        Int64.to_float (Int64.sub now (Atomic.get cur.heartbeat_ns)) *. 1e-9
      in
      let budget = watchdog_budget_locked t in
      if age_s > budget then begin
        t.worker_hang_count <- t.worker_hang_count + 1;
        Atomic.set cur.retired true;
        let detail =
          Printf.sprintf
            "worker %d heartbeat silent for %.2fs (budget %.2fs) on job %s"
            slot.wid age_s budget id
        in
        Log.warn (fun m -> m "%s; replacing worker" detail);
        (match victim_locked t ~wid:slot.wid ~gen:cur.gen with
        | Some v -> requeue_locked t v ~detail
        | None -> ());
        slot.zombies <- cur :: slot.zombies;
        slot.cur <-
          spawn_worker t ~wid:slot.wid ~jobs_done:slot.jobs_done
            ~gen:(cur.gen + 1)
      end
  end

let rec supervisor_loop t =
  if Atomic.get t.stopping then ()
  else begin
    let now = Deadline.now_ns () in
    locked t (fun () -> Array.iter (check_slot_locked t now) t.slots);
    Unix.sleepf 0.025;
    supervisor_loop t
  end

(* --- admission ---------------------------------------------------------- *)

let enqueue_locked t job ~round =
  Hashtbl.replace t.table job.id (Queued { job; round });
  Fair_queue.push t.queue ~client:job.client job.id;
  t.queued_samples <- t.queued_samples + job.spec.P.n

let admit t (spec : P.spec) ~deadline_s ~client =
  match validate t.config spec with
  | Error detail ->
    locked t (fun () -> t.rejected_count <- t.rejected_count + 1);
    P.Rejected { reason = P.Bad_request { detail } }
  | Ok () ->
    let canonical =
      P.spec_canonical ~pipeline:(pipeline_signature t.config) spec
    in
    let id = P.job_id canonical in
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | Some (Finished _) ->
          t.cache_hit_count <- t.cache_hit_count + 1;
          P.Accepted { id; cached = true }
        | Some (Queued _ | Running _ | Quarantined _) ->
          P.Accepted { id; cached = false }
        | None ->
          let backlog = t.queued_samples + spec.P.n in
          let estimated_wait_s =
            estimate_wait_s ~ewma_sample_s:t.ewma_sample_s
              ~backlog_samples:backlog ~workers:t.config.workers
          in
          if deadline_s > 0.0 && estimated_wait_s > deadline_s then begin
            t.rejected_count <- t.rejected_count + 1;
            P.Rejected
              { reason = P.Over_deadline { estimated_wait_s; deadline_s } }
          end
          else if Fair_queue.length t.queue >= t.config.queue_max then begin
            t.rejected_count <- t.rejected_count + 1;
            P.Rejected
              {
                reason =
                  P.Queue_full
                    {
                      queued = Fair_queue.length t.queue;
                      queue_max = t.config.queue_max;
                    };
              }
          end
          else begin
            enqueue_locked t
              {
                id;
                spec;
                canonical;
                client;
                submitted_ns = Deadline.now_ns ();
                deadline_s;
              }
              ~round:1;
            P.Accepted { id; cached = false }
          end)

let handle t req =
  match req with
  | P.Submit { spec; deadline_s; client } -> admit t spec ~deadline_s ~client
  | P.Status { id } ->
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> P.Unknown_id { id }
        | Some (Queued _) ->
          let position =
            Int.max 0
              (Fair_queue.position t.queue (fun qid -> String.equal qid id))
          in
          P.Job_status { id; state = P.Queued { position } }
        | Some (Running _) -> P.Job_status { id; state = P.Running }
        | Some (Finished _) -> P.Job_status { id; state = P.Done }
        | Some (Quarantined { attempts; detail }) ->
          P.Job_status { id; state = P.Quarantined { attempts; detail } })
  | P.Result { id } ->
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> P.Unknown_id { id }
        | Some (Queued _) ->
          let position =
            Int.max 0
              (Fair_queue.position t.queue (fun qid -> String.equal qid id))
          in
          P.Job_status { id; state = P.Queued { position } }
        | Some (Running _) -> P.Job_status { id; state = P.Running }
        | Some (Quarantined { attempts; detail }) ->
          P.Job_status { id; state = P.Quarantined { attempts; detail } }
        | Some (Finished summary) ->
          t.served_count <- t.served_count + 1;
          P.Job_result summary)
  | P.Health ->
    let now = Deadline.now_ns () in
    locked t (fun () ->
        let workers =
          Array.to_list t.slots
          |> List.map (fun slot ->
                 let cur = slot.cur in
                 {
                   P.wid = slot.wid;
                   generation = cur.gen;
                   busy = Atomic.get cur.busy;
                   heartbeat_age_s =
                     Int64.to_float
                       (Int64.sub now (Atomic.get cur.heartbeat_ns))
                     *. 1e-9;
                   jobs_done = Atomic.get slot.jobs_done;
                 })
        in
        P.Health_report
          {
            uptime_s = elapsed_s t.started_ns;
            queued = Fair_queue.length t.queue;
            running = t.running_count;
            finished = t.finished_count;
            rejected = t.rejected_count;
            cache_hits = t.cache_hit_count;
            served = t.served_count;
            requeued = t.requeued_count;
            quarantined = t.quarantined_count;
            worker_crashes = t.worker_crash_count;
            worker_hangs = t.worker_hang_count;
            state_bytes = t.state_bytes;
            evicted = t.evicted_count;
            workers;
          })
  | P.Shutdown ->
    Atomic.set t.stopping true;
    P.Shutting_down

(* --- startup recovery --------------------------------------------------- *)

let recover t =
  locked t (fun () -> seed_files_locked t);
  let dir = t.config.state_dir in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".ckpt" then begin
        let path = Filename.concat dir f in
        match Journal.read ~path with
        | Error e ->
          (* The typed payload names the offending snapshot; quarantine it
             so a corrupt cache entry cannot wedge every restart. *)
          Log.warn (fun m ->
              m "recovery: quarantining: %s" (Journal.error_to_string e));
          (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ());
          locked t (fun () ->
              forget_file_locked t f;
              note_file_locked t (f ^ ".bad"))
        | Ok snap -> (
          (* Checkpoint appends "|codec:<name>" to the caller fingerprint
             before journaling; strip it to recover the canonical spec. *)
          let fp =
            let full = snap.Journal.identity.Journal.fingerprint in
            match String.rindex_opt full '|' with
            | Some i
              when String.length full - i > 7
                   && String.equal (String.sub full (i + 1) 6) "codec:" ->
              String.sub full 0 i
            | _ -> full
          in
          match P.canonical_pipeline fp with
          | Some p when String.equal p (pipeline_signature t.config) -> (
            match P.spec_of_canonical fp with
            | Error detail ->
              Log.warn (fun m ->
                  m "recovery: %s: unparseable fingerprint (%s); skipped" path
                    detail)
            | Ok spec ->
              let id = P.job_id fp in
              if String.equal id snap.Journal.identity.Journal.label then begin
                let done_n = Array.length snap.Journal.entries in
                Log.info (fun m ->
                    m "recovery: %s: %d/%d samples; re-enqueued" path done_n
                      spec.P.n);
                (* Re-run through the normal path: Checkpoint resume
                   restores completed samples bit-identically from the
                   journal, so a finished job costs nothing and a partial
                   one computes only its missing indices. *)
                locked t (fun () ->
                    enqueue_locked t
                      {
                        id;
                        spec;
                        canonical = fp;
                        client = "recovered";
                        submitted_ns = Deadline.now_ns ();
                        deadline_s = 0.0;
                      }
                      ~round:1)
              end
              else
                Log.warn (fun m ->
                    m "recovery: %s: label %s does not match content id %s; \
                       skipped"
                      path snap.Journal.identity.Journal.label id))
          | _ ->
            Log.info (fun m ->
                m "recovery: %s: different pipeline signature; left in place"
                  path))
      end)
    files;
  (* A previous daemon may have run with a larger (or no) byte budget;
     trim to ours before accepting work.  Queued recovered jobs are
     protected, so a journal we just promised to resume is never the
     victim of its own restart. *)
  locked t (fun () -> evict_locked t)

(* --- connection handling ------------------------------------------------ *)

let handle_conn t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  match P.read_frame fd with
  | Error e ->
    (* A half-open or garbled client: answer typed if the socket still
       writes, then drop. *)
    ignore
      (P.write_frame fd
         (P.encode_response
            (P.Rejected
               { reason = P.Bad_request { detail = P.error_to_string e } })))
  | Ok payload ->
    let resp =
      match P.decode_request payload with
      | Error e ->
        locked t (fun () -> t.rejected_count <- t.rejected_count + 1);
        P.Rejected { reason = P.Bad_request { detail = P.error_to_string e } }
      | Ok req -> handle t req
    in
    (match P.write_frame fd (P.encode_response resp) with
    | Ok () -> ()
    | Error e ->
      Log.debug (fun m -> m "response write failed: %s" (P.error_to_string e)))

(* --- lifecycle ---------------------------------------------------------- *)

let mkdir_p dir =
  let rec mk d =
    if not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  if not (String.equal dir "") then mk dir

let create ?pipeline config =
  if config.queue_max < 1 then
    invalid_arg "Service.create: queue_max must be >= 1";
  if config.workers < 1 then
    invalid_arg "Service.create: workers must be >= 1";
  if config.poison_retries < 1 then
    invalid_arg "Service.create: poison_retries must be >= 1";
  if not (Float.is_finite config.hang_timeout_s && config.hang_timeout_s > 0.0)
  then invalid_arg "Service.create: hang_timeout_s must be positive";
  if config.state_max_bytes < 0 then
    invalid_arg "Service.create: state_max_bytes must be >= 0 (0 = unbounded)";
  if config.mc_per_geometry < 10 then
    invalid_arg "Service.create: mc_per_geometry must be >= 10";
  mkdir_p config.state_dir;
  mkdir_p (Filename.dirname config.socket_path);
  let pipeline =
    match pipeline with
    | Some p -> p
    | None ->
      Log.info (fun m ->
          m "building statistical pipeline (seed %d, %d samples/geometry)"
            config.pipeline_seed config.mc_per_geometry);
      Vstat_core.Pipeline.build ~seed:config.pipeline_seed
        ~mc_per_geometry:config.mc_per_geometry ()
  in
  if Sys.file_exists config.socket_path then
    (try Sys.remove config.socket_path with Sys_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let t =
    {
      config;
      pipeline;
      listen_fd;
      mu = Mutex.create ();
      table = Hashtbl.create 64;
      queue = Fair_queue.create ();
      stopping = Atomic.make false;
      started_ns = Deadline.now_ns ();
      queued_samples = 0;
      running_count = 0;
      finished_count = 0;
      rejected_count = 0;
      cache_hit_count = 0;
      served_count = 0;
      requeued_count = 0;
      quarantined_count = 0;
      worker_crash_count = 0;
      worker_hang_count = 0;
      ewma_sample_s = 0.0;
      files = Hashtbl.create 64;
      file_seq = 0;
      state_bytes = 0;
      evicted_count = 0;
      slots = [||];
      supervisor = None;
    }
  in
  recover t;
  t.slots <-
    Array.init config.workers (fun wid ->
        let jobs_done = Atomic.make 0 in
        { wid; jobs_done; cur = spawn_worker t ~wid ~jobs_done ~gen:1;
          zombies = [] });
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  Log.info (fun m ->
      m "listening on %s (%d worker%s)" config.socket_path config.workers
        (if config.workers = 1 then "" else "s"));
  t

let stop t = Atomic.set t.stopping true

let serve t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        (match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          (try handle_conn t fd
           with exn ->
             Log.warn (fun m ->
                 m "connection handler raised: %s" (Printexc.to_string exn)));
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> ());
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  Log.info (fun m -> m "draining %d worker(s)" (Array.length t.slots));
  (match t.supervisor with
  | Some d ->
    Domain.join d;
    t.supervisor <- None
  | None -> ());
  (* Every live worker — current or zombie — sees [stopping] at its next
     sample boundary, flushes its journal and exits; joining them here is
     what makes shutdown graceful rather than torn.  (An injected Hang
     only freezes heartbeats, never the domain, so zombies wake up too.) *)
  let join_st wid st =
    match st.domain with
    | None -> ()
    | Some d ->
      (match Domain.join d with
      | () -> ()
      | exception exn ->
        Log.warn (fun m ->
            m "worker %d gen %d died during shutdown: %s" wid st.gen
              (Printexc.to_string exn)));
      st.domain <- None
  in
  Array.iter
    (fun slot ->
      join_st slot.wid slot.cur;
      List.iter (join_st slot.wid) slot.zombies)
    t.slots;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.config.socket_path with Sys_error _ -> ());
  Log.info (fun m -> m "stopped")
