(* Sparse LU with a KLU-style symbolic/numeric split.  See sparse.mli for
   the contract; this comment records the algorithm choices.

   Symbolic phase (cold, once per topology):
   1. Maximum transversal (Duff MC21, augmenting paths over the bipartite
      column/row graph, diagonal-first cheap pass): produces a row
      permutation giving a zero-free diagonal.  MNA needs this — a vsource
      branch row has a structurally *zero* diagonal, and static diagonal
      pivoting would otherwise divide by gmin-or-nothing.
   2. Minimum-degree ordering on the symmetrized permuted pattern
      S = pattern(B) ∪ pattern(Bᵀ), B = Pr·A, with explicit clique fill and
      smallest-index tie-breaking (fully deterministic).
   3. Fill pattern of the Cholesky factor of S via the elimination tree
      (Liu's row-structure algorithm): row i of L = indices reached walking
      each lower-adjacent j up the etree until hitting an already-flagged
      node.  For a symmetric pattern this upper-bounds (and with diagonal
      pivoting, equals) the LU fill, and the resulting pattern is closed
      under the up-looking update, so the numeric phase never meets an
      unstored position.

   Numeric phase (hot, per Newton iteration): up-looking factorization row
   by row.  Row i is scattered from the CSR slots into a dense work vector
   (O(1) per flop, no index search), eliminated against the already-
   factored rows j < i in ascending order, pivot-checked, and gathered
   back.  The work vector never needs clearing: elimination only reads
   positions inside row i's pattern, which the scatter just wrote. *)

type symbolic = {
  n : int;
  perm : int array;      (* factored position -> original column *)
  perm_inv : int array;  (* original column  -> factored position *)
  orig_row : int array;  (* factored position -> original row (transversal) *)
  pos_of_row : int array;(* original row -> factored position *)
  row_ptr : int array;   (* CSR over the combined L+U pattern, length n+1 *)
  col_ind : int array;   (* permuted column indices, ascending per row *)
  diag_pos : int array;  (* flat index of the diagonal entry of each row *)
}

type numeric = {
  sym : symbolic;
  ax : float array;  (* nnz values: stamped, then factored in place *)
  w : float array;   (* dense scatter workspace, length n *)
  y : float array;   (* permuted RHS workspace, length n *)
}

let analyses = Atomic.make 0
let refactorizations = Atomic.make 0
let symbolic_analyses () = Atomic.get analyses
let numeric_factorizations () = Atomic.get refactorizations

let n sym = sym.n
let nnz sym = sym.row_ptr.(sym.n)

(* Matches Lu.singular_rtol in spirit: the sparse test is row-relative
   (static diagonal pivoting has no column search), using the *stamped*
   row magnitude as the scale so near-total cancellation is caught while a
   uniformly tiny but well-conditioned row (a gmin-only DC gate node)
   passes with ratio ~1. *)
let singular_rtol = 1e-14

(* --- small cold-path helpers ------------------------------------------- *)

let int_compare (a : int) b = compare a b

(* Deduplicated, sorted flat keys (row * n + col) of the entry list. *)
let dedup_keys ~n entries =
  let m = Array.length entries in
  let keys = Array.make (max m 1) 0 in
  for i = 0 to m - 1 do
    let r, c = entries.(i) in
    if r < 0 || r >= n || c < 0 || c >= n then
      invalid_arg "Sparse.analyze: entry out of range";
    keys.(i) <- (r * n) + c
  done;
  let keys = Array.sub keys 0 m in
  Array.sort int_compare keys;
  let uniq = ref 0 in
  for i = 0 to m - 1 do
    if i = 0 || keys.(i) <> keys.(i - 1) then begin
      keys.(!uniq) <- keys.(i);
      incr uniq
    end
  done;
  Array.sub keys 0 !uniq

(* Sorted union of two sorted int arrays, excluding [skip1] from [a] and
   [skip2] from [b]. *)
let union_excluding a ~skip1 b ~skip2 =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let push v =
    if !k = 0 || out.(!k - 1) <> v then begin
      out.(!k) <- v;
      incr k
    end
  in
  while !i < la || !j < lb do
    if !i < la && a.(!i) = skip1 then incr i
    else if !j < lb && b.(!j) = skip2 then incr j
    else if !j >= lb || (!i < la && a.(!i) <= b.(!j)) then begin
      push a.(!i);
      incr i
    end
    else begin
      push b.(!j);
      incr j
    end
  done;
  Array.sub out 0 !k

(* --- maximum transversal (MC21) ---------------------------------------- *)

(* cols.(c) = sorted original rows with an entry in column c.  Returns
   colmatch : column -> matched original row. *)
let max_transversal ~n ~cols =
  let rowmatch = Array.make n (-1) in
  let colmatch = Array.make n (-1) in
  let contains arr v =
    let lo = ref 0 and hi = ref (Array.length arr) in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo < Array.length arr && arr.(!lo) = v
  in
  (* Cheap pass: take the diagonal wherever it exists. *)
  for c = 0 to n - 1 do
    if rowmatch.(c) = -1 && contains cols.(c) c then begin
      rowmatch.(c) <- c;
      colmatch.(c) <- c
    end
  done;
  let stamp = Array.make n (-1) in
  let rec augment c tag =
    let rows = cols.(c) in
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < Array.length rows do
      let r = rows.(!i) in
      if stamp.(r) <> tag then begin
        stamp.(r) <- tag;
        if rowmatch.(r) = -1 || augment rowmatch.(r) tag then begin
          rowmatch.(r) <- c;
          colmatch.(c) <- r;
          found := true
        end
      end;
      incr i
    done;
    !found
  in
  for c = 0 to n - 1 do
    if colmatch.(c) = -1 && not (augment c c) then
      Linalg_error.fail ~routine:"Sparse.analyze"
        ~reason:
          (Printf.sprintf
             "structurally singular pattern: no transversal covers column %d"
             c)
  done;
  colmatch

(* --- minimum-degree ordering ------------------------------------------- *)

(* Greedy minimum degree with explicit clique fill on the symmetric
   adjacency [adj] (sorted arrays, no self-loops).  Invariant: adjacency
   lists contain only alive vertices (eliminating v rewrites exactly the
   lists that mention v), so Array.length is the live degree.  Ties break
   on the smallest vertex index, making the order fully deterministic. *)
let min_degree ~n ~adj =
  let adj = Array.map Array.copy adj in
  let alive = Array.make n true in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) in
    let best_deg = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) && Array.length adj.(v) < !best_deg then begin
        best := v;
        best_deg := Array.length adj.(v)
      end
    done;
    let v = !best in
    order.(k) <- v;
    alive.(v) <- false;
    let nbrs = adj.(v) in
    Array.iter
      (fun u -> adj.(u) <- union_excluding adj.(u) ~skip1:v nbrs ~skip2:u)
      nbrs;
    adj.(v) <- [||]
  done;
  order

(* --- symbolic fill (etree row structures) ------------------------------ *)

(* lower.(i) = sorted j < i adjacent to i in the permuted symmetric
   pattern.  Returns the strictly-lower row patterns of L (sorted). *)
let fill_pattern ~n ~lower =
  let parent = Array.make n (-1) in
  let flag = Array.make n (-1) in
  let rows = Array.make n [||] in
  let buf = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    flag.(i) <- i;
    let len = ref 0 in
    Array.iter
      (fun j ->
        let jj = ref j in
        while flag.(!jj) <> i do
          buf.(!len) <- !jj;
          incr len;
          flag.(!jj) <- i;
          if parent.(!jj) = -1 then parent.(!jj) <- i;
          jj := parent.(!jj)
        done)
      lower.(i);
    let row = Array.sub buf 0 !len in
    Array.sort int_compare row;
    rows.(i) <- row
  done;
  rows

(* --- analysis ----------------------------------------------------------- *)

let analyze ~n:dim ~entries =
  if dim < 0 then invalid_arg "Sparse.analyze: negative dimension";
  Atomic.incr analyses;
  let n = dim in
  let keys = dedup_keys ~n entries in
  let m = Array.length keys in
  (* Column-wise row lists for the transversal. *)
  let col_cnt = Array.make (max n 1) 0 in
  Array.iter (fun k -> col_cnt.(k mod n) <- col_cnt.(k mod n) + 1) keys;
  let cols = Array.init n (fun c -> Array.make col_cnt.(c) 0) in
  let col_fill = Array.make (max n 1) 0 in
  Array.iter
    (fun k ->
      let r = k / n and c = k mod n in
      cols.(c).(col_fill.(c)) <- r;
      col_fill.(c) <- col_fill.(c) + 1)
    keys;
  Array.iter (Array.sort int_compare) cols;
  let colmatch = max_transversal ~n ~cols in
  (* Row-permuted pattern B: A entry (r, c) lands at B row rowmatch(r).
     Build the symmetric adjacency of B ∪ Bᵀ (no self-loops). *)
  let rowmatch = Array.make (max n 1) 0 in
  for c = 0 to n - 1 do
    rowmatch.(colmatch.(c)) <- c
  done;
  let pair_keys = Array.make (max (2 * m) 1) 0 in
  let np = ref 0 in
  Array.iter
    (fun k ->
      let r = rowmatch.(k / n) and c = k mod n in
      if r <> c then begin
        pair_keys.(!np) <- (r * n) + c;
        incr np;
        pair_keys.(!np) <- (c * n) + r;
        incr np
      end)
    keys;
  let pair_keys = Array.sub pair_keys 0 !np in
  Array.sort int_compare pair_keys;
  let adj_cnt = Array.make (max n 1) 0 in
  let npu = ref 0 in
  for i = 0 to Array.length pair_keys - 1 do
    if i = 0 || pair_keys.(i) <> pair_keys.(i - 1) then begin
      pair_keys.(!npu) <- pair_keys.(i);
      incr npu;
      adj_cnt.(pair_keys.(i) / n) <- adj_cnt.(pair_keys.(i) / n) + 1
    end
  done;
  let adj = Array.init n (fun v -> Array.make adj_cnt.(v) 0) in
  let adj_fill = Array.make (max n 1) 0 in
  for i = 0 to !npu - 1 do
    let v = pair_keys.(i) / n and u = pair_keys.(i) mod n in
    adj.(v).(adj_fill.(v)) <- u;
    adj_fill.(v) <- adj_fill.(v) + 1
  done;
  let order = min_degree ~n ~adj in
  let order_inv = Array.make (max n 1) 0 in
  for k = 0 to n - 1 do
    order_inv.(order.(k)) <- k
  done;
  (* Strictly-lower adjacency of the permuted symmetric pattern. *)
  let lower =
    Array.init n (fun i ->
        let v = order.(i) in
        let l =
          Array.of_seq
            (Seq.filter
               (fun j -> j < i)
               (Seq.map (fun u -> order_inv.(u)) (Array.to_seq adj.(v))))
        in
        Array.sort int_compare l;
        l)
  in
  let lrows = fill_pattern ~n ~lower in
  (* U rows mirror L columns: k ∈ Urow(j) iff j ∈ Lrow(k), k ascending. *)
  let ucnt = Array.make (max n 1) 0 in
  Array.iter (fun row -> Array.iter (fun j -> ucnt.(j) <- ucnt.(j) + 1) row)
    lrows;
  let urows = Array.init n (fun j -> Array.make ucnt.(j) 0) in
  let ufill = Array.make (max n 1) 0 in
  for k = 0 to n - 1 do
    Array.iter
      (fun j ->
        urows.(j).(ufill.(j)) <- k;
        ufill.(j) <- ufill.(j) + 1)
      lrows.(k)
  done;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <-
      row_ptr.(i) + Array.length lrows.(i) + 1 + Array.length urows.(i)
  done;
  let col_ind = Array.make (max row_ptr.(n) 1) 0 in
  let diag_pos = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let p = ref row_ptr.(i) in
    Array.iter
      (fun j ->
        col_ind.(!p) <- j;
        incr p)
      lrows.(i);
    diag_pos.(i) <- !p;
    col_ind.(!p) <- i;
    incr p;
    Array.iter
      (fun k ->
        col_ind.(!p) <- k;
        incr p)
      urows.(i)
  done;
  let perm = order in
  let perm_inv = order_inv in
  let orig_row = Array.init n (fun i -> colmatch.(perm.(i))) in
  let pos_of_row = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    pos_of_row.(orig_row.(i)) <- i
  done;
  { n; perm; perm_inv; orig_row; pos_of_row; row_ptr; col_ind; diag_pos }

(* --- the symbolic cache ------------------------------------------------- *)

(* Keyed on the exact deduplicated pattern; Hashtbl.hash truncates long
   arrays but equality is full structural comparison, so collisions cost
   probes, never correctness.  Guarded by a mutex: symbolic values are
   immutable, so sharing one across domains is safe. *)
let cache : (int * int array, symbolic) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let cache_bound = 64

let analyze_cached ~n ~entries =
  let key = (n, dedup_keys ~n entries) in
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match Hashtbl.find_opt cache key with
      | Some sym -> sym
      | None ->
        let sym = analyze ~n ~entries in
        if Hashtbl.length cache >= cache_bound then Hashtbl.reset cache;
        Hashtbl.add cache key sym;
        sym)

(* --- numeric phase ------------------------------------------------------ *)

let create_numeric sym =
  {
    sym;
    ax = Array.make (max (nnz sym) 1) 0.0;
    w = Array.make (max sym.n 1) 0.0;
    y = Array.make (max sym.n 1) 0.0;
  }

let symbolic_of t = t.sym
let values t = t.ax
let clear t = Array.fill t.ax 0 (Array.length t.ax) 0.0

let slot sym ~row ~col =
  if row < 0 || row >= sym.n || col < 0 || col >= sym.n then
    invalid_arg "Sparse.slot: index out of range";
  let pi = sym.pos_of_row.(row) in
  let pj = sym.perm_inv.(col) in
  let lo = ref sym.row_ptr.(pi) and hi = ref sym.row_ptr.(pi + 1) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if sym.col_ind.(mid) < pj then lo := mid + 1 else hi := mid
  done;
  if !lo >= sym.row_ptr.(pi + 1) || sym.col_ind.(!lo) <> pj then
    invalid_arg "Sparse.slot: entry outside the fill pattern";
  !lo

(* Up-looking numeric refactorization on the static pattern.  Hot: no
   allocation (local refs compile to mutable stack slots), direct flat
   indexing only. *)
let[@vstat.hot] factor t =
  let sym = t.sym in
  let n = sym.n in
  let ax = t.ax and w = t.w in
  let rp = sym.row_ptr and ci = sym.col_ind and dp = sym.diag_pos in
  for i = 0 to n - 1 do
    (* Scatter the stamped row, recording its magnitude as pivot scale. *)
    let scale = ref 0.0 in
    for p = rp.(i) to rp.(i + 1) - 1 do
      let v = ax.(p) in
      w.(ci.(p)) <- v;
      let av = Float.abs v in
      if av > !scale then scale := av
    done;
    (* Eliminate against factored rows j < i, ascending. *)
    for p = rp.(i) to dp.(i) - 1 do
      let j = ci.(p) in
      let lij = w.(j) /. ax.(dp.(j)) in
      w.(j) <- lij;
      for q = dp.(j) + 1 to rp.(j + 1) - 1 do
        w.(ci.(q)) <- w.(ci.(q)) -. (lij *. ax.(q))
      done
    done;
    (* Scale-relative pivot test; scale >= 0 and a NaN pivot fails too. *)
    let piv = Float.abs w.(i) in
    if not (piv > singular_rtol *. !scale) then
      raise (Lu.Singular { column = sym.perm.(i); scale = !scale });
    for p = rp.(i) to rp.(i + 1) - 1 do
      ax.(p) <- w.(ci.(p))
    done
  done;
  Atomic.incr refactorizations

let[@vstat.hot] solve_in_place t b =
  let sym = t.sym in
  let n = sym.n in
  if Array.length b <> n then invalid_arg "Sparse.solve_in_place: rhs length";
  let ax = t.ax and y = t.y in
  let rp = sym.row_ptr and ci = sym.col_ind and dp = sym.diag_pos in
  let orig_row = sym.orig_row and perm = sym.perm in
  (* Permute the RHS into factored row order. *)
  for i = 0 to n - 1 do
    y.(i) <- b.(orig_row.(i))
  done;
  (* Forward substitution with unit-diagonal L. *)
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for p = rp.(i) to dp.(i) - 1 do
      acc := !acc -. (ax.(p) *. y.(ci.(p)))
    done;
    y.(i) <- !acc
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for p = dp.(i) + 1 to rp.(i + 1) - 1 do
      acc := !acc -. (ax.(p) *. y.(ci.(p)))
    done;
    y.(i) <- !acc /. ax.(dp.(i))
  done;
  (* Permute the solution back to original column order. *)
  for i = 0 to n - 1 do
    b.(perm.(i)) <- y.(i)
  done

let iter_entries t ~f =
  let sym = t.sym in
  for i = 0 to sym.n - 1 do
    for p = sym.row_ptr.(i) to sym.row_ptr.(i + 1) - 1 do
      f ~row:sym.orig_row.(i) ~col:sym.perm.(sym.col_ind.(p)) t.ax.(p)
    done
  done
