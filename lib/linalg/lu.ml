type t = {
  lu : Matrix.t;       (* combined L (unit diagonal) and U factors *)
  pivots : int array;  (* LAPACK-style swaps: row k exchanged pivots.(k) *)
  sign : float;        (* permutation parity, for the determinant *)
}

exception Singular of int

let factor_in_place a ~pivots =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor_in_place: square matrix";
  if Array.length pivots <> n then
    invalid_arg "Lu.factor_in_place: pivot array length";
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: find the largest remaining entry in column k. *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Matrix.get a k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Matrix.get a i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < 1e-280 then raise (Singular k);
    pivots.(k) <- !pivot_row;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get a k j in
        Matrix.set a k j (Matrix.get a !pivot_row j);
        Matrix.set a !pivot_row j tmp
      done;
      sign := -. !sign
    end;
    let ukk = Matrix.get a k k in
    for i = k + 1 to n - 1 do
      let lik = Matrix.get a i k /. ukk in
      Matrix.set a i k lik;
      for j = k + 1 to n - 1 do
        Matrix.add_to a i j (-.lik *. Matrix.get a k j)
      done
    done
  done;
  !sign

let solve_in_place ~lu ~pivots b =
  let n = Matrix.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_in_place: rhs length";
  (* Replay the row exchanges recorded during factorization. *)
  for k = 0 to n - 1 do
    let p = pivots.(k) in
    if p <> k then begin
      let tmp = b.(k) in
      b.(k) <- b.(p);
      b.(p) <- tmp
    end
  done;
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      b.(i) <- b.(i) -. (Matrix.get lu i j *. b.(j))
    done
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      b.(i) <- b.(i) -. (Matrix.get lu i j *. b.(j))
    done;
    b.(i) <- b.(i) /. Matrix.get lu i i
  done

let factor a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor: matrix must be square";
  let lu = Matrix.copy a in
  let pivots = Array.make n 0 in
  let sign = factor_in_place lu ~pivots in
  { lu; pivots; sign }

let solve_factored { lu; pivots; _ } b =
  let n = Matrix.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: rhs length";
  let x = Array.copy b in
  solve_in_place ~lu ~pivots x;
  x

let solve a b = solve_factored (factor a) b

let det { lu; sign; _ } =
  let n = Matrix.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let inverse a =
  let n = Matrix.rows a in
  let f = factor a in
  let inv = Matrix.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv
