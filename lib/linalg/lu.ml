type t = {
  lu : Matrix.t;       (* combined L (unit diagonal) and U factors *)
  pivots : int array;  (* LAPACK-style swaps: row k exchanged pivots.(k) *)
  sign : float;        (* permutation parity, for the determinant *)
}

exception Singular of { column : int; scale : float }

(* Singularity is judged *relative to the column's magnitude*: a pivot is
   acceptable when it is within [singular_rtol] of the largest entry seen in
   its column (both the already-eliminated U part and the pivot-search
   range).  An absolute threshold misclassifies well-conditioned but badly
   scaled systems — MNA matrices mix siemens-scale conductances with charge
   rows scaled by 1/h — while letting genuinely rank-deficient columns with
   not-tiny leftovers slip through. *)
let singular_rtol = 1e-14

(* Hot-path notes (enforced by the [@vstat.hot] lint rule and the
   zero-allocation gate in test/test_lint.ml):
   - the permutation parity is returned as an int (+1/-1), not a float — a
     boxed float return from a non-inlined function would allocate on every
     Newton iteration;
   - the inner loops index [Matrix.buffer] directly, because out-of-line
     [Matrix.get]/[set]/[add_to] calls box their float argument or result
     under classic (non-flambda) ocamlopt. *)
let[@vstat.hot] factor_in_place a ~pivots =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor_in_place: square matrix";
  if Array.length pivots <> n then
    invalid_arg "Lu.factor_in_place: pivot array length";
  let d = Matrix.buffer a in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    (* Partial pivoting: find the largest remaining entry in column k. *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs d.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs d.((i * n) + k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    (* Column scale = search max plus the U entries above the pivot row
       (rows already eliminated still witness the column's magnitude). *)
    let col_scale = ref !pivot_val in
    for i = 0 to k - 1 do
      let v = Float.abs d.((i * n) + k) in
      if v > !col_scale then col_scale := v
    done;
    (* scale >= pivot by construction, so the relative test also covers the
       all-zero column (0 > 0 is false) and NaN poisoning. *)
    if not (!pivot_val > singular_rtol *. !col_scale) then
      raise (Singular { column = k; scale = !col_scale });
    pivots.(k) <- !pivot_row;
    if !pivot_row <> k then begin
      let p = !pivot_row in
      for j = 0 to n - 1 do
        let tmp = d.((k * n) + j) in
        d.((k * n) + j) <- d.((p * n) + j);
        d.((p * n) + j) <- tmp
      done;
      sign := - !sign
    end;
    let ukk = d.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let lik = d.((i * n) + k) /. ukk in
      d.((i * n) + k) <- lik;
      for j = k + 1 to n - 1 do
        d.((i * n) + j) <- d.((i * n) + j) -. (lik *. d.((k * n) + j))
      done
    done
  done;
  !sign

let[@vstat.hot] solve_in_place ~lu ~pivots b =
  let n = Matrix.rows lu in
  (* Shape guards (cold, once per solve): a non-square "factor" smuggled
     through the raw API would read out of bounds on the flat buffer. *)
  if Matrix.cols lu <> n then invalid_arg "Lu.solve_in_place: square factor";
  if Array.length pivots <> n then
    invalid_arg "Lu.solve_in_place: pivot array length";
  if Array.length b <> n then invalid_arg "Lu.solve_in_place: rhs length";
  let d = Matrix.buffer lu in
  (* Replay the row exchanges recorded during factorization. *)
  for k = 0 to n - 1 do
    let p = pivots.(k) in
    if p <> k then begin
      let tmp = b.(k) in
      b.(k) <- b.(p);
      b.(p) <- tmp
    end
  done;
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      b.(i) <- b.(i) -. (d.((i * n) + j) *. b.(j))
    done
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      b.(i) <- b.(i) -. (d.((i * n) + j) *. b.(j))
    done;
    b.(i) <- b.(i) /. d.((i * n) + i)
  done

let factor a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor: matrix must be square";
  let lu = Matrix.copy a in
  let pivots = Array.make n 0 in
  let sign = Float.of_int (factor_in_place lu ~pivots) in
  { lu; pivots; sign }

let solve_factored { lu; pivots; _ } b =
  let n = Matrix.rows lu in
  if Matrix.cols lu <> n then invalid_arg "Lu.solve_factored: square factor";
  if Array.length b <> n then invalid_arg "Lu.solve_factored: rhs length";
  let x = Array.copy b in
  solve_in_place ~lu ~pivots x;
  x

let solve a b = solve_factored (factor a) b

let det { lu; sign; _ } =
  let n = Matrix.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let inverse a =
  let n = Matrix.rows a in
  let f = factor a in
  let inv = Matrix.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv
