(** Dense, row-major matrices of floats.

    Everything in this repository is small (circuit MNA systems of a few
    dozen unknowns, BPV systems of a few dozen equations), so a simple dense
    representation with O(n^3) factorizations is the right tool. *)

type t
(** A mutable [rows] x [cols] matrix. *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val init : rows:int -> cols:int -> f:(int -> int -> float) -> t
(** [init ~rows ~cols ~f] fills entry (i, j) with [f i j]. *)

val identity : int -> t

val of_rows : float array array -> t
(** Build from row arrays; all rows must have equal length. *)

val rows : t -> int
val cols : t -> int

val buffer : t -> float array
(** The underlying flat row-major storage: entry (i, j) lives at index
    [i * cols m + j].  Exposed for the allocation-free hot loops (LU,
    circuit assembly): under classic (non-flambda) ocamlopt an out-of-line
    {!get}/{!set}/{!add_to} call boxes its float argument or result, so the
    inner loops index the buffer directly.  The array aliases the matrix —
    writes through one are visible through the other.  No bounds checks
    beyond the array's own. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] is [set m i j (get m i j +. v)] — the MNA "stamp". *)

val copy : t -> t
val fill : t -> float -> unit
val transpose : t -> t
val map : f:(float -> float) -> t -> t

val row : t -> int -> float array
val col : t -> int -> float array

val mul : t -> t -> t
(** Matrix product.  Dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** Matrix–vector product. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val max_abs : t -> float
(** Largest absolute entry (infinity-like norm helper). *)

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
