type result = { values : float array; vectors : Matrix.t }

let off_diagonal_norm a =
  let n = Matrix.rows a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = Matrix.get a i j in
        acc := !acc +. (v *. v)
      end
    done
  done;
  sqrt !acc

let decompose ?(max_sweeps = 100) a0 =
  let n = Matrix.rows a0 in
  if Matrix.cols a0 <> n then invalid_arg "Eigen_sym.decompose: square only";
  let a =
    Matrix.init ~rows:n ~cols:n ~f:(fun i j ->
        0.5 *. (Matrix.get a0 i j +. Matrix.get a0 j i))
  in
  let v = Matrix.identity n in
  let scale = Float.max 1.0 (Matrix.max_abs a) in
  let tol = 1e-14 *. scale *. Float.of_int n in
  let sweeps = ref 0 in
  while off_diagonal_norm a > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Matrix.get a p q in
        if Float.abs apq > tol /. Float.of_int (n * n) then begin
          let app = Matrix.get a p p and aqq = Matrix.get a q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Apply the rotation to rows/columns p and q of A. *)
          for k = 0 to n - 1 do
            let akp = Matrix.get a k p and akq = Matrix.get a k q in
            Matrix.set a k p ((c *. akp) -. (s *. akq));
            Matrix.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Matrix.get a p k and aqk = Matrix.get a q k in
            Matrix.set a p k ((c *. apk) -. (s *. aqk));
            Matrix.set a q k ((s *. apk) +. (c *. aqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Matrix.get v k p and vkq = Matrix.get v k q in
            Matrix.set v k p ((c *. vkp) -. (s *. vkq));
            Matrix.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  if !sweeps >= max_sweeps && off_diagonal_norm a > tol *. 100.0 then
    Linalg_error.fail ~routine:"Eigen_sym.decompose"
      ~reason:"Jacobi did not converge";
  let order =
    List.sort
      (fun i j -> Float.compare (Matrix.get a j j) (Matrix.get a i i))
      (List.init n Fun.id)
  in
  let order = Array.of_list order in
  let values = Array.map (fun i -> Matrix.get a i i) order in
  let vectors =
    Matrix.init ~rows:n ~cols:n ~f:(fun i j -> Matrix.get v i order.(j))
  in
  { values; vectors }
