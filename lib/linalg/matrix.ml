type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: dimensions";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init ~rows ~cols ~f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init ~rows:n ~cols:n ~f:(fun i j -> if i = j then 1.0 else 0.0)

let of_rows arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Matrix.of_rows: ragged rows")
    arr;
  init ~rows ~cols ~f:(fun i j -> arr.(i).(j))

let rows m = m.rows
let cols m = m.cols
let buffer m = m.data

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d, %d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check m i j;
  m.data.((i * m.cols) + j) <- v

let add_to m i j v =
  check m i j;
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. v

let copy m = { m with data = Array.copy m.data }

let fill m v = Array.fill m.data 0 (Array.length m.data) v

let transpose m = init ~rows:m.cols ~cols:m.rows ~f:(fun i j -> get m j i)

let map ~f m = { m with data = Array.map f m.data }

let row m i =
  check m i 0;
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  check m 0 j;
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if not (Float.equal aik 0.0) then
        for j = 0 to b.cols - 1 do
          m.data.((i * m.cols) + j) <-
            m.data.((i * m.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  m

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + j) *. v.(j))
      done;
      !acc)

let zip_with op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> op a.data.(k) b.data.(k)) }

let add a b = zip_with ( +. ) a b
let sub a b = zip_with ( -. ) a b
let scale s m = map ~f:(fun x -> s *. x) m

let max_abs m =
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let equal ?(tol = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  && max_abs (sub a b) <= tol

let pp ppf m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "% .6e " m.data.((i * m.cols) + j)
    done;
    Format.pp_print_newline ppf ()
  done
