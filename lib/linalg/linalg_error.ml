exception Numeric_error of { routine : string; reason : string }

let fail ~routine ~reason = raise (Numeric_error { routine; reason })

let to_string ~routine ~reason = Printf.sprintf "%s: %s" routine reason

let () =
  Printexc.register_printer (function
    | Numeric_error { routine; reason } ->
      Some
        ("Vstat_linalg.Linalg_error.Numeric_error: "
        ^ to_string ~routine ~reason)
    | _ -> None)
