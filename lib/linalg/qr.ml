type t = {
  qr : Matrix.t;       (* Householder vectors below the diagonal, R above *)
  rdiag : float array; (* diagonal of R *)
  m : int;
  n : int;
}

let factor a =
  let m = Matrix.rows a and n = Matrix.cols a in
  if m < n then invalid_arg "Qr.factor: need rows >= cols";
  let qr = Matrix.copy a in
  let rdiag = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* Norm of the k-th column below the diagonal. *)
    let nrm = ref 0.0 in
    for i = k to m - 1 do
      let v = Matrix.get qr i k in
      nrm := Float.hypot !nrm v
    done;
    let nrm = if Matrix.get qr k k < 0.0 then -. !nrm else !nrm in
    if not (Float.equal nrm 0.0) then begin
      for i = k to m - 1 do
        Matrix.set qr i k (Matrix.get qr i k /. nrm)
      done;
      Matrix.add_to qr k k 1.0;
      for j = k + 1 to n - 1 do
        let s = ref 0.0 in
        for i = k to m - 1 do
          s := !s +. (Matrix.get qr i k *. Matrix.get qr i j)
        done;
        let s = -. !s /. Matrix.get qr k k in
        for i = k to m - 1 do
          Matrix.add_to qr i j (s *. Matrix.get qr i k)
        done
      done
    end;
    rdiag.(k) <- -.nrm
  done;
  { qr; rdiag; m; n }

let q_transpose_apply { qr; m; n; _ } b =
  if Array.length b <> m then invalid_arg "Qr.q_transpose_apply: length";
  let y = Array.copy b in
  for k = 0 to n - 1 do
    if not (Float.equal (Matrix.get qr k k) 0.0) then begin
      let s = ref 0.0 in
      for i = k to m - 1 do
        s := !s +. (Matrix.get qr i k *. y.(i))
      done;
      let s = -. !s /. Matrix.get qr k k in
      for i = k to m - 1 do
        y.(i) <- y.(i) +. (s *. Matrix.get qr i k)
      done
    end
  done;
  y

let solve_r { qr; rdiag; n; _ } y =
  let x = Array.sub y 0 n in
  for k = n - 1 downto 0 do
    if Float.abs rdiag.(k) < 1e-280 then
      Linalg_error.fail ~routine:"Qr.solve_r" ~reason:"rank-deficient system";
    for j = k + 1 to n - 1 do
      x.(k) <- x.(k) -. (Matrix.get qr k j *. x.(j))
    done;
    x.(k) <- x.(k) /. rdiag.(k)
  done;
  x

let least_squares a b =
  let f = factor a in
  solve_r f (q_transpose_apply f b)

let r { qr; rdiag; n; _ } =
  Matrix.init ~rows:n ~cols:n ~f:(fun i j ->
      if i = j then rdiag.(i)
      else if i < j then Matrix.get qr i j
      else 0.0)
