(** Typed numerical-breakdown exception for the linear-algebra and
    optimization kernels.

    Precondition violations (wrong shapes, empty inputs) stay
    [Invalid_argument] — they are caller bugs.  {!Numeric_error} is
    reserved for data-dependent breakdown of an otherwise well-posed
    computation: Jacobi sweeps that do not converge, a rank-deficient
    triangular solve, an active-set loop that stalls.  Carrying the routine
    name and reason as structured fields lets the runtime failure
    classifier ({!Vstat_runtime.Runtime.register_classifier}, wired in
    [Vstat_circuit.Diag]) census these as ["numeric_error"] instead of an
    opaque [Failure] string. *)

exception Numeric_error of { routine : string; reason : string }

val fail : routine:string -> reason:string -> 'a
(** Raise {!Numeric_error}. *)

val to_string : routine:string -> reason:string -> string
(** ["routine: reason"], the rendering used by the registered [Printexc]
    printer. *)
