(** Compressed-sparse LU with a KLU-style symbolic/numeric split.

    MNA matrices are sparse, and every Monte Carlo sample of a circuit
    shares one sparsity pattern: only the numeric values change between
    samples, attempts, and Newton iterations.  This module therefore splits
    the work the way KLU does:

    - {!analyze} (cold, once per circuit topology) computes a maximum
      transversal (so vsource branch rows with structurally zero diagonals
      get a zero-free diagonal), a fill-reducing minimum-degree ordering on
      the symmetrized pattern, and the complete fill pattern of the L and U
      factors via the elimination tree.  The result is immutable and safe
      to share across domains.
    - {!factor} and {!solve_in_place} (hot, once per Newton iteration) do
      only numeric work, in place, on buffers preallocated by
      {!create_numeric} — no allocation, enforced by the [@vstat.hot] lint
      rule and the [Gc.minor_words] gate in test/test_lint.ml.

    Values are stamped by flat slot index ({!slot}, resolved once at engine
    compile time) so the assembly loop is a plain [float array] write.

    Pivoting is static: the pivot order is fixed by the symbolic analysis
    (topology only), never by sample values, so a sample's result cannot
    depend on which samples previously ran on a reused engine.  A pivot
    that fails the scale-relative test raises {!Lu.Singular} and the
    engine's gmin/source-stepping ladder takes over. *)

type symbolic
(** The shared, immutable result of symbolic analysis for one topology. *)

type numeric
(** Preallocated numeric workspace (values + factor) for one solver
    instance.  Not thread-safe; create one per engine/worker. *)

val analyze : n:int -> entries:(int * int) array -> symbolic
(** [analyze ~n ~entries] computes the symbolic factorization of the [n]x[n]
    pattern containing [entries] (0-based [(row, col)] pairs; duplicates
    allowed).  The diagonal need not be structurally present — a maximum
    transversal permutes rows to make it so.
    @raise Linalg_error.Numeric_error when the pattern is structurally
      singular (no zero-free diagonal exists).
    @raise Invalid_argument on out-of-range entries or [n < 0]. *)

val analyze_cached : n:int -> entries:(int * int) array -> symbolic
(** Like {!analyze}, but memoized on the deduplicated pattern in a
    process-wide, mutex-protected cache: recompiling the same circuit
    topology for every MC sample reuses one analysis.  The cache is reset
    when it exceeds a small bound. *)

val n : symbolic -> int
val nnz : symbolic -> int
(** Stored entries in the combined L+U pattern, fill included. *)

val slot : symbolic -> row:int -> col:int -> int
(** Flat index into {!values} holding original-coordinate entry
    [(row, col)].  Every pair passed to {!analyze} has a slot (fill
    positions do too).  Resolve slots once at compile time; stamping is
    then [values.(slot) <- values.(slot) +. v].
    @raise Invalid_argument if [(row, col)] is outside the fill pattern. *)

val create_numeric : symbolic -> numeric
(** Allocate the value buffer and work vectors for one solver instance. *)

val symbolic_of : numeric -> symbolic

val values : numeric -> float array
(** The stamp buffer, length {!nnz}, in symbolic slot order.  Overwritten
    by {!factor}; restamp (after {!clear}) before each refactorization. *)

val clear : numeric -> unit
(** Zero the value buffer ([Array.fill]; allocation-free). *)

val factor : numeric -> unit
(** Numeric refactorization in place on the stamped values (up-looking,
    row by row, static pivot order).  Allocation-free.
    @raise Lu.Singular when a diagonal pivot is negligible relative to the
      stamped magnitude of its row ([column] reports the original index). *)

val solve_in_place : numeric -> float array -> unit
(** Solve [A x = b] in place on [b] (original coordinates), reusing the
    last {!factor}.  Allocation-free.
    @raise Invalid_argument on a mis-sized right-hand side. *)

val iter_entries : numeric -> f:(row:int -> col:int -> float -> unit) -> unit
(** Iterate the stored values in original coordinates (fill slots
    included), e.g. to scatter into a dense matrix.  Only meaningful
    between stamping and {!factor}. *)

val symbolic_analyses : unit -> int
(** Process-wide count of actual (non-cached) {!analyze} runs, for
    pattern-reuse tests. *)

val numeric_factorizations : unit -> int
(** Process-wide count of {!factor} calls. *)
