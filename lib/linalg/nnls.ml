let residual_norm a x b =
  let r = Matrix.mul_vec a x in
  let acc = ref 0.0 in
  Array.iteri (fun i ri -> let d = ri -. b.(i) in acc := !acc +. (d *. d)) r;
  sqrt !acc

(* Solve the unconstrained least-squares problem restricted to the columns in
   the passive set, returning the full-length solution with zeros on the
   active (clamped) coordinates. *)
let solve_passive a b passive =
  let n = Matrix.cols a in
  let idx =
    Array.of_list
      (List.filter (fun j -> passive.(j)) (List.init n Fun.id))
  in
  if Array.length idx = 0 then Array.make n 0.0
  else begin
    let sub =
      Matrix.init ~rows:(Matrix.rows a) ~cols:(Array.length idx)
        ~f:(fun i k -> Matrix.get a i idx.(k))
    in
    let z = Qr.least_squares sub b in
    let x = Array.make n 0.0 in
    Array.iteri (fun k j -> x.(j) <- z.(k)) idx;
    x
  end

let solve ?(max_iter = 0) a b =
  let m = Matrix.rows a and n = Matrix.cols a in
  if Array.length b <> m then invalid_arg "Nnls.solve: rhs length";
  let max_iter = if max_iter = 0 then 10 * n else max_iter in
  let passive = Array.make n false in
  let x = Array.make n 0.0 in
  let gradient () =
    (* w = A^T (b - A x) *)
    let r = Matrix.mul_vec a x in
    let resid = Array.init m (fun i -> b.(i) -. r.(i)) in
    Array.init n (fun j ->
        let acc = ref 0.0 in
        for i = 0 to m - 1 do
          acc := !acc +. (Matrix.get a i j *. resid.(i))
        done;
        !acc)
  in
  let tol =
    let anorm = Matrix.max_abs a in
    1e-12 *. Float.max 1.0 anorm *. Float.of_int m
  in
  let iterations = ref 0 in
  let rec outer () =
    incr iterations;
    if !iterations > max_iter then
      Linalg_error.fail ~routine:"Nnls.solve"
        ~reason:"active-set iteration did not converge";
    let w = gradient () in
    (* Most-violating inactive coordinate. *)
    let best = ref (-1) in
    let best_w = ref tol in
    for j = 0 to n - 1 do
      if (not passive.(j)) && w.(j) > !best_w then begin
        best := j;
        best_w := w.(j)
      end
    done;
    if !best < 0 then () (* KKT satisfied *)
    else begin
      passive.(!best) <- true;
      inner ();
      outer ()
    end
  and inner () =
    let z = solve_passive a b passive in
    (* If the unconstrained sub-solution is feasible, accept it. *)
    let feasible = ref true in
    for j = 0 to n - 1 do
      if passive.(j) && z.(j) <= 0.0 then feasible := false
    done;
    if !feasible then Array.blit z 0 x 0 n
    else begin
      (* Step from x toward z as far as feasibility allows, then drop the
         coordinates that hit zero from the passive set. *)
      let alpha = ref infinity in
      for j = 0 to n - 1 do
        if passive.(j) && z.(j) <= 0.0 then begin
          let a_j = x.(j) /. (x.(j) -. z.(j)) in
          if a_j < !alpha then alpha := a_j
        end
      done;
      let alpha = if Float.is_finite !alpha then !alpha else 0.0 in
      for j = 0 to n - 1 do
        x.(j) <- x.(j) +. (alpha *. (z.(j) -. x.(j)));
        if passive.(j) && x.(j) <= 1e-14 then begin
          x.(j) <- 0.0;
          passive.(j) <- false
        end
      done;
      inner ()
    end
  in
  outer ();
  x
