(** Dense complex matrices and LU solve, for AC (small-signal) analysis
    where the MNA system is G + j.omega.C. *)

type t
(** A mutable rows x cols matrix of {!Complex.t}. *)

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val of_real : Matrix.t -> t
(** Embed a real matrix (zero imaginary parts). *)

val combine : g:Matrix.t -> c:Matrix.t -> omega:float -> t
(** [combine ~g ~c ~omega] is G + j.omega.C — the AC system matrix. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val mul_vec : t -> Complex.t array -> Complex.t array

exception Singular of { column : int; scale : float }

val solve : t -> Complex.t array -> Complex.t array
(** LU with partial pivoting (by modulus).  O(n^3).
    @raise Singular on numerically singular systems.
    @raise Invalid_argument on shape mismatch. *)
