type t = { rows : int; cols : int; data : Complex.t array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Cmatrix.create: dimensions";
  { rows; cols; data = Array.make (rows * cols) Complex.zero }

let of_real m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let out = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      out.data.((i * cols) + j) <- { Complex.re = Matrix.get m i j; im = 0.0 }
    done
  done;
  out

let combine ~g ~c ~omega =
  let rows = Matrix.rows g and cols = Matrix.cols g in
  if Matrix.rows c <> rows || Matrix.cols c <> cols then
    invalid_arg "Cmatrix.combine: shape mismatch";
  let out = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      out.data.((i * cols) + j) <-
        { Complex.re = Matrix.get g i j; im = omega *. Matrix.get c i j }
    done
  done;
  out

let rows m = m.rows
let cols m = m.cols

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Cmatrix: index out of bounds"

let get m i j =
  check m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check m i j;
  m.data.((i * m.cols) + j) <- v

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Cmatrix.mul_vec: dimension";
  Array.init m.rows (fun i ->
      let acc = ref Complex.zero in
      for j = 0 to m.cols - 1 do
        acc := Complex.add !acc (Complex.mul m.data.((i * m.cols) + j) v.(j))
      done;
      !acc)

exception Singular of { column : int; scale : float }

let solve a0 b =
  let n = a0.rows in
  if a0.cols <> n then invalid_arg "Cmatrix.solve: square only";
  if Array.length b <> n then invalid_arg "Cmatrix.solve: rhs length";
  let a = { a0 with data = Array.copy a0.data } in
  let x = Array.copy b in
  let idx i j = (i * n) + j in
  for k = 0 to n - 1 do
    (* Partial pivoting by modulus. *)
    let pivot_row = ref k in
    let pivot_mag = ref (Complex.norm a.data.(idx k k)) in
    for i = k + 1 to n - 1 do
      let m = Complex.norm a.data.(idx i k) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    (* Scale-relative singularity test, mirroring Lu.factor_in_place: the
       column scale includes the already-eliminated rows above k. *)
    let col_scale = ref !pivot_mag in
    for i = 0 to k - 1 do
      let m = Complex.norm a.data.(idx i k) in
      if m > !col_scale then col_scale := m
    done;
    if not (!pivot_mag > 1e-14 *. !col_scale) then
      raise (Singular { column = k; scale = !col_scale });
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = a.data.(idx k j) in
        a.data.(idx k j) <- a.data.(idx !pivot_row j);
        a.data.(idx !pivot_row j) <- tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    let akk = a.data.(idx k k) in
    for i = k + 1 to n - 1 do
      let factor = Complex.div a.data.(idx i k) akk in
      if factor <> Complex.zero then begin
        for j = k to n - 1 do
          a.data.(idx i j) <-
            Complex.sub a.data.(idx i j) (Complex.mul factor a.data.(idx k j))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul factor x.(k))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- Complex.sub x.(i) (Complex.mul a.data.(idx i j) x.(j))
    done;
    x.(i) <- Complex.div x.(i) a.data.(idx i i)
  done;
  x
