(** LU factorization with partial pivoting, the workhorse solver for the
    circuit simulator's Newton iterations. *)

type t
(** A factorization of a square matrix. *)

exception Singular of { column : int; scale : float }
(** Raised when the best available pivot in [column] is negligible
    *relative to* that column's magnitude [scale] (the largest absolute
    entry seen in the column, eliminated part included).  The test is
    scale-invariant: uniformly tiny but well-conditioned systems factor
    fine, while rank-deficient columns are caught even when their residual
    entries are far above any absolute threshold.  [scale] is surfaced so
    diagnostics can report how degenerate the column actually was. *)

val factor : Matrix.t -> t
(** Factor a square matrix.  O(n^3).
    @raise Singular when the matrix is numerically singular.
    @raise Invalid_argument on non-square input. *)

val solve_factored : t -> float array -> float array
(** Solve A x = b reusing a factorization.  O(n^2) per right-hand side. *)

val factor_in_place : Matrix.t -> pivots:int array -> int
(** Allocation-free factorization for hot loops: overwrite the matrix with
    its combined L (unit diagonal) / U factors, record the row exchanges in
    [pivots] (LAPACK convention: at step k, row k was swapped with row
    [pivots.(k)]), and return the permutation sign as [+1] or [-1].  The
    sign is an [int] deliberately: a boxed float return would allocate on
    every Newton iteration and break the zero-allocation gate.  [pivots]
    must have length equal to the matrix dimension.
    @raise Singular when the matrix is numerically singular.
    @raise Invalid_argument on non-square input or a mis-sized pivot array. *)

val solve_in_place : lu:Matrix.t -> pivots:int array -> float array -> unit
(** Solve A x = b in place, overwriting [b] with the solution, given the
    outputs of {!factor_in_place}.  Performs no allocation. *)

val solve : Matrix.t -> float array -> float array
(** One-shot [factor] + [solve_factored]. *)

val det : t -> float
(** Determinant from the factorization (product of pivots, sign-corrected). *)

val inverse : Matrix.t -> Matrix.t
(** Explicit inverse; for tests and small covariance work only. *)
